package nvme_test

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"aeolia/internal/nvme"
)

// TestBatchRingInvariants is the property test locking in the SQ/CQ ring
// rules under batched submission. For random queue depths and random batch
// size sequences it checks, after every batch and at every drain:
//
//   - SQ/CQ head and tail indices stay inside [0, depth);
//   - the CQ head never crosses the tail (occupancy stays in [0, depth]);
//   - the phase bit flips exactly once per CQ wrap (i.e. it equals the
//     initial phase iff the number of completed laps is even);
//   - every submitted CID completes exactly once — no lost and no
//     duplicated completion.
func TestBatchRingInvariants(t *testing.T) {
	prop := func(depthSeed uint8, sizes []uint8) bool {
		depth := 2 + int(depthSeed%31) // 2..32
		e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 4096})
		qp, err := d.CreateQueuePair(depth)
		if err != nil {
			t.Fatal(err)
		}
		initialPhase := qp.PhaseBit()
		buf := make([]byte, 512)
		seen := make(map[uint16]int)
		completedTotal := 0
		submittedTotal := 0

		checkRings := func(where string) bool {
			if h, tl := qp.SQHead(), qp.SQTail(); h < 0 || h >= depth || tl < 0 || tl >= depth {
				t.Logf("%s: SQ head/tail out of range: %d/%d depth %d", where, h, tl, depth)
				return false
			}
			if h, tl := qp.CQHead(), qp.CQTail(); h < 0 || h >= depth || tl < 0 || tl >= depth {
				t.Logf("%s: CQ head/tail out of range: %d/%d depth %d", where, h, tl, depth)
				return false
			}
			if occ := qp.CQOccupied(); occ < 0 || occ > depth {
				t.Logf("%s: CQ occupancy %d outside [0,%d]", where, occ, depth)
				return false
			}
			// Head + occupancy must land on the tail: the head never
			// crosses it.
			if (qp.CQHead()+qp.CQOccupied())%depth != qp.CQTail() {
				t.Logf("%s: CQ head %d + occupied %d inconsistent with tail %d",
					where, qp.CQHead(), qp.CQOccupied(), qp.CQTail())
				return false
			}
			// Phase flips once per wrap: after completedTotal posts the
			// device has wrapped completedTotal/depth times.
			wantPhase := initialPhase
			if (completedTotal/depth)%2 == 1 {
				wantPhase = !initialPhase
			}
			if qp.PhaseBit() != wantPhase {
				t.Logf("%s: phase %v after %d completions (depth %d), want %v",
					where, qp.PhaseBit(), completedTotal, depth, wantPhase)
				return false
			}
			return true
		}

		drain := func() bool {
			e.Run(0)
			completedTotal = int(qp.Completed)
			for _, ce := range qp.Poll(0) {
				seen[ce.CID]++
			}
			return checkRings("drain")
		}

		for _, sz := range sizes {
			n := 1 + int(sz%uint8(depth)) // 1..depth, may exceed free space
			entries := make([]nvme.SubmissionEntry, n)
			for i := range entries {
				entries[i] = nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: uint64(i % 4096), NLB: 1, Data: buf}
			}
			subs, err := qp.SubmitBatch(entries)
			if errors.Is(err, nvme.ErrSQFull) {
				// Over-capacity batches must be rejected wholesale:
				// nothing submitted, rings untouched.
				if !drain() {
					return false
				}
				continue
			}
			if err != nil {
				t.Logf("SubmitBatch: %v", err)
				return false
			}
			if len(subs) != n {
				t.Logf("SubmitBatch returned %d handles for %d entries", len(subs), n)
				return false
			}
			submittedTotal += n
			if !checkRings("post-submit") {
				return false
			}
			if !drain() {
				return false
			}
		}
		if !drain() {
			return false
		}
		// Exactly-once: every accepted CID completed once.
		if len(seen) != submittedTotal {
			t.Logf("completed %d distinct CIDs, submitted %d", len(seen), submittedTotal)
			return false
		}
		for cid, cnt := range seen {
			if cnt != 1 {
				t.Logf("CID %d completed %d times", cid, cnt)
				return false
			}
		}
		e.Shutdown()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBatchAtomicRejection: a batch larger than the SQ's free space is
// rejected with ErrSQFull and leaves no partial state behind — no pending
// commands, no ring movement, no doorbell write.
func TestSubmitBatchAtomicRejection(t *testing.T) {
	_, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(4)
	buf := make([]byte, 512)
	entries := make([]nvme.SubmissionEntry, 4) // depth-1 == 3 is the max
	for i := range entries {
		entries[i] = nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: uint64(i), NLB: 1, Data: buf}
	}
	tail, doorbells := qp.SQTail(), qp.SQDoorbells
	if _, err := qp.SubmitBatch(entries); !errors.Is(err, nvme.ErrSQFull) {
		t.Fatalf("oversized batch: %v, want ErrSQFull", err)
	}
	if qp.SQTail() != tail || qp.SQDoorbells != doorbells || qp.Inflight() != 0 {
		t.Fatalf("rejected batch left state behind: tail %d→%d doorbells %d→%d inflight %d",
			tail, qp.SQTail(), doorbells, qp.SQDoorbells, qp.Inflight())
	}
	// A batch that exactly fits is accepted with a single doorbell write.
	if _, err := qp.SubmitBatch(entries[:3]); err != nil {
		t.Fatalf("exact-fit batch: %v", err)
	}
	if qp.SQDoorbells != doorbells+1 {
		t.Fatalf("SQDoorbells = %d after one batch, want %d", qp.SQDoorbells, doorbells+1)
	}
	if qp.MaxSQBurst != 3 {
		t.Fatalf("MaxSQBurst = %d, want 3", qp.MaxSQBurst)
	}
}

// TestInterruptCoalescing: with MaxEvents=4 the CQ interrupt fires on the
// 4th completion, not before; a partial aggregation fires MaxDelay after its
// first completion; and polling the CQ dry suppresses the armed interrupt.
func TestInterruptCoalescing(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(16)
	qp.SetCoalescing(nvme.Coalescing{MaxEvents: 4, MaxDelay: 50 * time.Microsecond})
	irqs := 0
	qp.OnCompletion = func(q *nvme.QueuePair) { irqs++ }
	buf := make([]byte, 512)
	submitN := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: uint64(i), NLB: 1, Data: buf}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Threshold path: 4 completions -> exactly 1 interrupt.
	submitN(4)
	e.Run(0)
	if irqs != 1 {
		t.Fatalf("irqs = %d after MaxEvents completions, want 1", irqs)
	}
	if qp.IRQCoalesced.Load() != 3 || qp.IRQRaised.Load() != 1 {
		t.Fatalf("IRQCoalesced/IRQRaised = %d/%d, want 3/1", qp.IRQCoalesced.Load(), qp.IRQRaised.Load())
	}
	qp.Poll(0)

	// Timer path: 2 completions sit below the threshold until MaxDelay
	// expires, then one aggregated interrupt fires.
	submitN(2)
	e.Run(e.Now() + 20*time.Microsecond)
	if irqs != 1 {
		t.Fatalf("irqs = %d before aggregation time, want still 1", irqs)
	}
	if !qp.NotifyPending() {
		t.Fatal("NotifyPending = false while aggregation is armed")
	}
	e.Run(e.Now() + 100*time.Microsecond)
	if irqs != 2 {
		t.Fatalf("irqs = %d after aggregation time, want 2", irqs)
	}
	qp.Poll(0)

	// Suppression path: polling consumes the aggregated CQEs before the
	// timer fires; the armed interrupt is cancelled, not raised.
	submitN(2)
	e.Run(e.Now() + 20*time.Microsecond) // completions post, timer still armed
	qp.Poll(0)
	if qp.NotifyPending() {
		t.Fatal("NotifyPending = true after the poll drained the CQ")
	}
	e.Run(e.Now() + 200*time.Microsecond)
	if irqs != 2 {
		t.Fatalf("irqs = %d after suppressed aggregation, want still 2", irqs)
	}
	if qp.IRQSuppressed.Load() != 2 {
		t.Fatalf("IRQSuppressed = %d, want 2", qp.IRQSuppressed.Load())
	}
	e.Shutdown()
}
