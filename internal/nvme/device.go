package nvme

import (
	"fmt"
	"sort"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/trace"
)

const chunkBlocks = 1024 // sparse-store allocation unit, in blocks

// Config describes a simulated device.
type Config struct {
	BlockSize int    // logical block size in bytes (512 or 4096)
	NumBlocks uint64 // device capacity in blocks
	Model     LatencyModel
	// MaxQueuePairs bounds CreateQueuePair (default 128).
	MaxQueuePairs int
}

// Injector intercepts commands for fault injection. Implementations return
// the fault (if any) to apply to the command; the zero CommandFault means
// "execute normally". Installed via Device.SetInjector; the production path
// pays one nil-check when no injector is present.
type Injector interface {
	InjectCommand(e *SubmissionEntry) CommandFault
}

// CommandFault describes one injected command-level fault.
type CommandFault struct {
	// Status, if non-success, completes the command with this status
	// without (fully) executing it.
	Status Status
	// TornBlocks only applies to failing writes (Status != success): the
	// first TornBlocks blocks of the transfer reach the device's volatile
	// write cache before the command errors out, modeling a transfer torn
	// mid-flight. The failed command makes no durability promise, so a
	// retry simply overwrites the partial data.
	TornBlocks uint32
	// ExtraLatency delays the command's completion (latency spike). It
	// applies to both successful and failing commands.
	ExtraLatency time.Duration
}

// Device is a simulated NVMe SSD bound to a sim.Engine. All methods must be
// called from engine context (task bodies or event callbacks).
type Device struct {
	eng *sim.Engine
	cfg Config

	store map[uint64][]byte // chunk index -> chunk data

	// cache is the volatile write cache: completed-but-unflushed block
	// images, dropped (or torn) at power loss. OpFlush destages it into
	// the durable store. Reads overlay it, so completed writes are always
	// visible to subsequent commands.
	cache map[uint64][]byte

	qps    map[int]*QueuePair
	nextQP int

	// channelFree[i] is when device channel i becomes free.
	channelFree []time.Duration
	// busReadFree / busWriteFree serialize the shared internal bus.
	busReadFree  time.Duration
	busWriteFree time.Duration

	// jitterState drives the deterministic per-command service-time
	// jitter (a small xorshift PRNG seeded at creation).
	jitterState uint64

	inj Injector

	// Stats.
	ReadOps    uint64
	WriteOps   uint64
	FlushOps   uint64
	BytesRead  uint64
	BytesWrite uint64
	// Injected-fault stats.
	InjectedErrors  uint64
	InjectedTorn    uint64
	InjectedLatency uint64
	// PowerCycles counts CrashAndReset invocations.
	PowerCycles uint64
}

// NewDevice creates a device on the engine.
func NewDevice(eng *sim.Engine, cfg Config) *Device {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.NumBlocks == 0 {
		cfg.NumBlocks = 1 << 20
	}
	if cfg.Model.Channels <= 0 {
		cfg.Model = P5800X()
	}
	if cfg.MaxQueuePairs <= 0 {
		cfg.MaxQueuePairs = 128
	}
	return &Device{
		eng:         eng,
		cfg:         cfg,
		store:       make(map[uint64][]byte),
		cache:       make(map[uint64][]byte),
		qps:         make(map[int]*QueuePair),
		channelFree: make([]time.Duration, cfg.Model.Channels),
		jitterState: 0x9E3779B97F4A7C15,
	}
}

// SetInjector installs (or, with nil, removes) the fault injector.
func (d *Device) SetInjector(inj Injector) { d.inj = inj }

// jitter returns a deterministic per-command service-time perturbation in
// [-2%, +2%] of d. Real flash media have this much variance and more; it
// also keeps the simulation from phase-locking periodic workloads.
func (d *Device) jitter(dur time.Duration) time.Duration {
	x := d.jitterState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.jitterState = x
	// Map to [-0.02, +0.02].
	frac := (float64(x%4096)/4096 - 0.5) * 0.04
	return time.Duration(float64(dur) * frac)
}

// Engine returns the engine the device is bound to.
func (d *Device) Engine() *sim.Engine { return d.eng }

// BlockSize returns the logical block size in bytes.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// NumBlocks returns the device capacity in blocks.
func (d *Device) NumBlocks() uint64 { return d.cfg.NumBlocks }

// chunk returns the backing slice for the chunk containing blk, allocating
// it if alloc is set (nil otherwise).
func (d *Device) chunk(blk uint64, alloc bool) []byte {
	ci := blk / chunkBlocks
	c := d.store[ci]
	if c == nil && alloc {
		c = make([]byte, chunkBlocks*d.cfg.BlockSize)
		d.store[ci] = c
	}
	return c
}

// readRaw copies blocks [slba, slba+n) into buf, overlaying the volatile
// write cache (a completed write is visible to later reads even before a
// flush makes it durable).
func (d *Device) readRaw(slba uint64, n uint32, buf []byte) {
	bs := uint64(d.cfg.BlockSize)
	for i := uint64(0); i < uint64(n); i++ {
		blk := slba + i
		dst := buf[i*bs : (i+1)*bs]
		if img, ok := d.cache[blk]; ok {
			copy(dst, img)
			continue
		}
		c := d.chunk(blk, false)
		if c == nil {
			for j := range dst {
				dst[j] = 0
			}
			continue
		}
		off := (blk % chunkBlocks) * bs
		copy(dst, c[off:off+bs])
	}
}

// writeRaw places buf's blocks into the volatile write cache; they become
// durable when a flush destages them.
func (d *Device) writeRaw(slba uint64, n uint32, buf []byte) {
	bs := uint64(d.cfg.BlockSize)
	for i := uint64(0); i < uint64(n); i++ {
		blk := slba + i
		img := d.cache[blk]
		if img == nil {
			img = make([]byte, bs)
			d.cache[blk] = img
		}
		copy(img, buf[i*bs:(i+1)*bs])
	}
}

// writeDurable copies a block image straight into the durable store.
func (d *Device) writeDurable(blk uint64, img []byte) {
	bs := uint64(d.cfg.BlockSize)
	c := d.chunk(blk, true)
	off := (blk % chunkBlocks) * bs
	copy(c[off:off+bs], img)
}

// destage makes every cached write durable (the effect of OpFlush).
func (d *Device) destage() {
	for blk, img := range d.cache {
		d.writeDurable(blk, img)
		delete(d.cache, blk)
	}
}

// CachedBlocks returns the number of completed-but-unflushed blocks.
func (d *Device) CachedBlocks() int { return len(d.cache) }

// CrashAndReset simulates power loss: the volatile write cache is lost and
// the device restarts with only durable (flushed) state. For each cached
// block, resolve decides what the medium holds afterwards: it receives the
// block number, the durable image, and the cached (lost) image, and returns
// the surviving image — return durable for a clean drop, cached if the
// in-flight write happened to complete, or any mix for a torn write. A nil
// resolve drops every cached block (the most adversarial clean power loss).
// Blocks are resolved in ascending order so resolvers driven by a seeded
// plan are deterministic.
func (d *Device) CrashAndReset(resolve func(blk uint64, durable, cached []byte) []byte) {
	blks := make([]uint64, 0, len(d.cache))
	for blk := range d.cache {
		blks = append(blks, blk)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	bs := uint64(d.cfg.BlockSize)
	for _, blk := range blks {
		if resolve != nil {
			durable := make([]byte, bs)
			if c := d.chunk(blk, false); c != nil {
				off := (blk % chunkBlocks) * bs
				copy(durable, c[off:off+bs])
			}
			if img := resolve(blk, durable, d.cache[blk]); img != nil {
				d.writeDurable(blk, img)
			}
		}
		delete(d.cache, blk)
	}
	d.PowerCycles++
}

// PeekBlock reads a block's current contents without consuming device time —
// a debugging/verification backdoor (used by fsck-style tests), not a data
// path.
func (d *Device) PeekBlock(blk uint64, buf []byte) {
	d.readRaw(blk, 1, buf)
}

// validate checks command bounds.
func (d *Device) validate(e *SubmissionEntry) Status {
	switch e.Opcode {
	case OpFlush:
		return StatusSuccess
	case OpRead, OpWrite:
		if e.NLB == 0 {
			return StatusInvalidField
		}
		if e.SLBA+uint64(e.NLB) > d.cfg.NumBlocks {
			return StatusLBARange
		}
		if len(e.SGL) > 0 {
			total := 0
			for _, seg := range e.SGL {
				if len(seg)%d.cfg.BlockSize != 0 {
					return StatusInvalidField
				}
				total += len(seg)
			}
			if total < int(e.NLB)*d.cfg.BlockSize {
				return StatusInvalidField
			}
		} else if len(e.Data) < int(e.NLB)*d.cfg.BlockSize {
			return StatusInvalidField
		}
		return StatusSuccess
	default:
		return StatusInvalidField
	}
}

// completionTime books device resources for the command and returns when it
// completes.
func (d *Device) completionTime(e *SubmissionEntry) time.Duration {
	now := d.eng.Now()
	bytes := int(e.NLB) * d.cfg.BlockSize

	// Shared bus serialization.
	var busDone time.Duration
	switch e.Opcode {
	case OpRead:
		bt := d.cfg.Model.busTime(OpRead, bytes)
		start := max(d.busReadFree, now)
		d.busReadFree = start + bt
		busDone = d.busReadFree
	case OpWrite:
		bt := d.cfg.Model.busTime(OpWrite, bytes)
		start := max(d.busWriteFree, now)
		d.busWriteFree = start + bt
		busDone = d.busWriteFree
	}

	// Channel occupancy: earliest-free channel.
	best := 0
	for i, f := range d.channelFree {
		if f < d.channelFree[best] {
			best = i
		}
	}
	start := max(d.channelFree[best], now)
	svc := d.cfg.Model.ServiceTime(e.Opcode, bytes)
	svc += d.jitter(svc)
	done := start + svc
	d.channelFree[best] = done

	return max(done, busDone)
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// process executes a submitted command: schedules data movement and CQE
// posting at the modeled completion time.
func (d *Device) process(qp *QueuePair, e SubmissionEntry) {
	qp.emit(trace.DeviceStart, uint32(e.CID), e.SLBA, uint64(e.NLB))
	st := d.validate(&e)
	if st != StatusSuccess {
		// Errors complete quickly, without touching media.
		d.eng.Schedule(200*time.Nanosecond, func() {
			qp.emit(trace.DeviceDone, uint32(e.CID), e.SLBA, uint64(st))
			qp.postCompletion(e.CID, st)
		})
		return
	}
	var fault CommandFault
	if d.inj != nil {
		fault = d.inj.InjectCommand(&e)
		if fault.ExtraLatency > 0 {
			d.InjectedLatency++
		}
	}
	if fault.Status != StatusSuccess {
		d.InjectedErrors++
		if e.Opcode == OpWrite && fault.TornBlocks > 0 {
			// The transfer tore mid-flight: a prefix of the data
			// reaches the volatile cache before the command fails.
			d.InjectedTorn++
			torn := fault.TornBlocks
			if torn > e.NLB {
				torn = e.NLB
			}
			src := e.Data
			if len(e.SGL) > 0 {
				src = flattenSGL(e.SGL)
			}
			tornData := src[:int(torn)*d.cfg.BlockSize]
			d.eng.Schedule(200*time.Nanosecond+fault.ExtraLatency, func() {
				d.writeRaw(e.SLBA, torn, tornData)
				qp.emit(trace.DeviceDone, uint32(e.CID), e.SLBA, uint64(fault.Status))
				qp.postCompletion(e.CID, fault.Status)
			})
			return
		}
		d.eng.Schedule(200*time.Nanosecond+fault.ExtraLatency, func() {
			qp.emit(trace.DeviceDone, uint32(e.CID), e.SLBA, uint64(fault.Status))
			qp.postCompletion(e.CID, fault.Status)
		})
		return
	}
	done := d.completionTime(&e) + fault.ExtraLatency
	switch e.Opcode {
	case OpRead:
		d.ReadOps++
		d.BytesRead += uint64(e.NLB) * uint64(d.cfg.BlockSize)
	case OpWrite:
		d.WriteOps++
		d.BytesWrite += uint64(e.NLB) * uint64(d.cfg.BlockSize)
	case OpFlush:
		d.FlushOps++
	}
	d.eng.ScheduleAt(done, func() {
		// Data movement happens at completion time: a read observes
		// the medium as of completion; a write lands in the volatile
		// cache then (a flush makes it durable).
		switch e.Opcode {
		case OpRead:
			if len(e.SGL) > 0 {
				d.moveSGL(OpRead, e.SLBA, e.NLB, e.SGL)
			} else {
				d.readRaw(e.SLBA, e.NLB, e.Data)
			}
		case OpWrite:
			if len(e.SGL) > 0 {
				d.moveSGL(OpWrite, e.SLBA, e.NLB, e.SGL)
			} else {
				d.writeRaw(e.SLBA, e.NLB, e.Data)
			}
		case OpFlush:
			d.destage()
		}
		qp.emit(trace.DeviceDone, uint32(e.CID), e.SLBA, uint64(StatusSuccess))
		qp.postCompletion(e.CID, StatusSuccess)
	})
}

// moveSGL transfers nlb blocks between the medium and a scatter-gather
// list, segment by segment (validate already checked block alignment and
// total length).
func (d *Device) moveSGL(op Opcode, slba uint64, nlb uint32, sgl [][]byte) {
	lba := slba
	left := nlb
	for _, seg := range sgl {
		if left == 0 {
			break
		}
		n := uint32(len(seg) / d.cfg.BlockSize)
		if n > left {
			n = left
			seg = seg[:int(n)*d.cfg.BlockSize]
		}
		if op == OpRead {
			d.readRaw(lba, n, seg)
		} else {
			d.writeRaw(lba, n, seg)
		}
		lba += uint64(n)
		left -= n
	}
}

// flattenSGL gathers a scatter-gather list into one contiguous buffer
// (fault-injection paths only; the data path never materializes it).
func flattenSGL(sgl [][]byte) []byte {
	total := 0
	for _, seg := range sgl {
		total += len(seg)
	}
	out := make([]byte, 0, total)
	for _, seg := range sgl {
		out = append(out, seg...)
	}
	return out
}

// CreateQueuePair allocates a queue pair of the given depth. The interrupt
// vector and notification callback are configured on the returned pair.
func (d *Device) CreateQueuePair(depth int) (*QueuePair, error) {
	if len(d.qps) >= d.cfg.MaxQueuePairs {
		return nil, fmt.Errorf("nvme: queue pair limit (%d) reached", d.cfg.MaxQueuePairs)
	}
	if depth <= 0 {
		depth = 128
	}
	d.nextQP++
	qp := newQueuePair(d, d.nextQP, depth)
	d.qps[qp.ID] = qp
	return qp, nil
}

// DeleteQueuePair releases a queue pair.
func (d *Device) DeleteQueuePair(qp *QueuePair) {
	delete(d.qps, qp.ID)
}

// QueuePairCount returns the number of live queue pairs.
func (d *Device) QueuePairCount() int { return len(d.qps) }
