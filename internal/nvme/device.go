package nvme

import (
	"fmt"
	"time"

	"aeolia/internal/sim"
)

const chunkBlocks = 1024 // sparse-store allocation unit, in blocks

// Config describes a simulated device.
type Config struct {
	BlockSize int    // logical block size in bytes (512 or 4096)
	NumBlocks uint64 // device capacity in blocks
	Model     LatencyModel
	// MaxQueuePairs bounds CreateQueuePair (default 128).
	MaxQueuePairs int
}

// Device is a simulated NVMe SSD bound to a sim.Engine. All methods must be
// called from engine context (task bodies or event callbacks).
type Device struct {
	eng *sim.Engine
	cfg Config

	store map[uint64][]byte // chunk index -> chunk data

	qps    map[int]*QueuePair
	nextQP int

	// channelFree[i] is when device channel i becomes free.
	channelFree []time.Duration
	// busReadFree / busWriteFree serialize the shared internal bus.
	busReadFree  time.Duration
	busWriteFree time.Duration

	// jitterState drives the deterministic per-command service-time
	// jitter (a small xorshift PRNG seeded at creation).
	jitterState uint64

	// Stats.
	ReadOps    uint64
	WriteOps   uint64
	FlushOps   uint64
	BytesRead  uint64
	BytesWrite uint64
}

// NewDevice creates a device on the engine.
func NewDevice(eng *sim.Engine, cfg Config) *Device {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.NumBlocks == 0 {
		cfg.NumBlocks = 1 << 20
	}
	if cfg.Model.Channels <= 0 {
		cfg.Model = P5800X()
	}
	if cfg.MaxQueuePairs <= 0 {
		cfg.MaxQueuePairs = 128
	}
	return &Device{
		eng:         eng,
		cfg:         cfg,
		store:       make(map[uint64][]byte),
		qps:         make(map[int]*QueuePair),
		channelFree: make([]time.Duration, cfg.Model.Channels),
		jitterState: 0x9E3779B97F4A7C15,
	}
}

// jitter returns a deterministic per-command service-time perturbation in
// [-2%, +2%] of d. Real flash media have this much variance and more; it
// also keeps the simulation from phase-locking periodic workloads.
func (d *Device) jitter(dur time.Duration) time.Duration {
	x := d.jitterState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.jitterState = x
	// Map to [-0.02, +0.02].
	frac := (float64(x%4096)/4096 - 0.5) * 0.04
	return time.Duration(float64(dur) * frac)
}

// Engine returns the engine the device is bound to.
func (d *Device) Engine() *sim.Engine { return d.eng }

// BlockSize returns the logical block size in bytes.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// NumBlocks returns the device capacity in blocks.
func (d *Device) NumBlocks() uint64 { return d.cfg.NumBlocks }

// chunk returns the backing slice for the chunk containing blk, allocating
// it if alloc is set (nil otherwise).
func (d *Device) chunk(blk uint64, alloc bool) []byte {
	ci := blk / chunkBlocks
	c := d.store[ci]
	if c == nil && alloc {
		c = make([]byte, chunkBlocks*d.cfg.BlockSize)
		d.store[ci] = c
	}
	return c
}

// readRaw copies blocks [slba, slba+n) into buf.
func (d *Device) readRaw(slba uint64, n uint32, buf []byte) {
	bs := uint64(d.cfg.BlockSize)
	for i := uint64(0); i < uint64(n); i++ {
		blk := slba + i
		dst := buf[i*bs : (i+1)*bs]
		c := d.chunk(blk, false)
		if c == nil {
			for j := range dst {
				dst[j] = 0
			}
			continue
		}
		off := (blk % chunkBlocks) * bs
		copy(dst, c[off:off+bs])
	}
}

// writeRaw copies buf into blocks [slba, slba+n).
func (d *Device) writeRaw(slba uint64, n uint32, buf []byte) {
	bs := uint64(d.cfg.BlockSize)
	for i := uint64(0); i < uint64(n); i++ {
		blk := slba + i
		c := d.chunk(blk, true)
		off := (blk % chunkBlocks) * bs
		copy(c[off:off+bs], buf[i*bs:(i+1)*bs])
	}
}

// PeekBlock reads a block's current contents without consuming device time —
// a debugging/verification backdoor (used by fsck-style tests), not a data
// path.
func (d *Device) PeekBlock(blk uint64, buf []byte) {
	d.readRaw(blk, 1, buf)
}

// validate checks command bounds.
func (d *Device) validate(e *SubmissionEntry) Status {
	switch e.Opcode {
	case OpFlush:
		return StatusSuccess
	case OpRead, OpWrite:
		if e.NLB == 0 {
			return StatusInvalidField
		}
		if e.SLBA+uint64(e.NLB) > d.cfg.NumBlocks {
			return StatusLBARange
		}
		if len(e.Data) < int(e.NLB)*d.cfg.BlockSize {
			return StatusInvalidField
		}
		return StatusSuccess
	default:
		return StatusInvalidField
	}
}

// completionTime books device resources for the command and returns when it
// completes.
func (d *Device) completionTime(e *SubmissionEntry) time.Duration {
	now := d.eng.Now()
	bytes := int(e.NLB) * d.cfg.BlockSize

	// Shared bus serialization.
	var busDone time.Duration
	switch e.Opcode {
	case OpRead:
		bt := d.cfg.Model.busTime(OpRead, bytes)
		start := max(d.busReadFree, now)
		d.busReadFree = start + bt
		busDone = d.busReadFree
	case OpWrite:
		bt := d.cfg.Model.busTime(OpWrite, bytes)
		start := max(d.busWriteFree, now)
		d.busWriteFree = start + bt
		busDone = d.busWriteFree
	}

	// Channel occupancy: earliest-free channel.
	best := 0
	for i, f := range d.channelFree {
		if f < d.channelFree[best] {
			best = i
		}
	}
	start := max(d.channelFree[best], now)
	svc := d.cfg.Model.ServiceTime(e.Opcode, bytes)
	svc += d.jitter(svc)
	done := start + svc
	d.channelFree[best] = done

	return max(done, busDone)
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// process executes a submitted command: schedules data movement and CQE
// posting at the modeled completion time.
func (d *Device) process(qp *QueuePair, e SubmissionEntry) {
	st := d.validate(&e)
	if st != StatusSuccess {
		// Errors complete quickly, without touching media.
		d.eng.Schedule(200*time.Nanosecond, func() { qp.postCompletion(e.CID, st) })
		return
	}
	done := d.completionTime(&e)
	switch e.Opcode {
	case OpRead:
		d.ReadOps++
		d.BytesRead += uint64(e.NLB) * uint64(d.cfg.BlockSize)
	case OpWrite:
		d.WriteOps++
		d.BytesWrite += uint64(e.NLB) * uint64(d.cfg.BlockSize)
	case OpFlush:
		d.FlushOps++
	}
	d.eng.ScheduleAt(done, func() {
		// Data movement happens at completion time: a read observes
		// the medium as of completion; a write becomes durable then.
		switch e.Opcode {
		case OpRead:
			d.readRaw(e.SLBA, e.NLB, e.Data)
		case OpWrite:
			d.writeRaw(e.SLBA, e.NLB, e.Data)
		}
		qp.postCompletion(e.CID, StatusSuccess)
	})
}

// CreateQueuePair allocates a queue pair of the given depth. The interrupt
// vector and notification callback are configured on the returned pair.
func (d *Device) CreateQueuePair(depth int) (*QueuePair, error) {
	if len(d.qps) >= d.cfg.MaxQueuePairs {
		return nil, fmt.Errorf("nvme: queue pair limit (%d) reached", d.cfg.MaxQueuePairs)
	}
	if depth <= 0 {
		depth = 128
	}
	d.nextQP++
	qp := newQueuePair(d, d.nextQP, depth)
	d.qps[qp.ID] = qp
	return qp, nil
}

// DeleteQueuePair releases a queue pair.
func (d *Device) DeleteQueuePair(qp *QueuePair) {
	delete(d.qps, qp.ID)
}

// QueuePairCount returns the number of live queue pairs.
func (d *Device) QueuePairCount() int { return len(d.qps) }
