package nvme

import "time"

// LatencyModel is the device service-time model: each command occupies one
// of Channels internal units for Base+size/ChannelBW, and transfers
// additionally serialize on a shared internal bus of BusRead/BusWrite
// bytes/sec, which caps aggregate throughput.
type LatencyModel struct {
	ReadBase  time.Duration
	WriteBase time.Duration
	// ChannelBW is the per-channel transfer rate in bytes/sec.
	ChannelBW float64
	// BusReadBW / BusWriteBW cap aggregate read/write throughput.
	BusReadBW  float64
	BusWriteBW float64
	// Channels is the device's internal parallelism.
	Channels int
}

// P5800X returns the calibrated model of the Intel Optane SSD DC P5800X
// (1.6/3.2 TB class): ~3 µs media latency, 7.2/6.2 GB/s seq read/write,
// ~1.5 M 4 KB random-read IOPS. With this model a 4 KB read takes
// 3.0 µs + 4096 B / 7.2 GB/s ≈ 3.55 µs of device time, which reproduces the
// paper's Figure 2 once the per-stack software costs are added.
func P5800X() LatencyModel {
	return LatencyModel{
		ReadBase:   3000 * time.Nanosecond,
		WriteBase:  3200 * time.Nanosecond,
		ChannelBW:  7.2e9,
		BusReadBW:  7.2e9,
		BusWriteBW: 6.2e9,
		Channels:   6,
	}
}

// ServiceTime returns the single-command occupancy of one channel.
func (m LatencyModel) ServiceTime(op Opcode, bytes int) time.Duration {
	var base time.Duration
	switch op {
	case OpRead:
		base = m.ReadBase
	case OpWrite:
		base = m.WriteBase
	case OpFlush:
		return m.WriteBase / 2
	default:
		base = m.ReadBase
	}
	if bytes <= 0 || m.ChannelBW <= 0 {
		return base
	}
	return base + time.Duration(float64(bytes)/m.ChannelBW*1e9)
}

// busTime returns the shared-bus occupancy of a transfer.
func (m LatencyModel) busTime(op Opcode, bytes int) time.Duration {
	var bw float64
	switch op {
	case OpRead:
		bw = m.BusReadBW
	case OpWrite:
		bw = m.BusWriteBW
	default:
		return 0
	}
	if bytes <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bw * 1e9)
}
