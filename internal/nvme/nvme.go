// Package nvme implements a functional model of an NVMe SSD: submission and
// completion queue pairs with doorbells and phase bits, a small command set,
// a sparse in-memory block store, and a calibrated service-time model of the
// Intel Optane P5800X used by the paper. Completions are delivered in
// virtual time through the internal/sim engine, either by raising an
// interrupt vector on a core (MSI-X → kernel, or remapped to a user
// interrupt) or by being discovered by pollers.
package nvme

import (
	"fmt"
)

// Opcode identifies an NVMe I/O command.
type Opcode uint8

// NVMe I/O command set opcodes (subset).
const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02
)

func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "flush"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op(%#x)", uint8(o))
	}
}

// Status is an NVMe completion status code (0 = success).
type Status uint16

// Completion status codes (subset; generic command status plus media errors,
// encoded as SCT<<8|SC like the spec's status field layout).
const (
	StatusSuccess           Status = 0x0
	StatusInvalidField      Status = 0x2
	StatusDataTransferError Status = 0x4
	StatusInternalError     Status = 0x6
	StatusLBARange          Status = 0x80
	StatusNamespaceNotReady Status = 0x82
	StatusWriteFault        Status = 0x280
	StatusUnrecoveredRead   Status = 0x281
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusInvalidField:
		return "invalid field"
	case StatusDataTransferError:
		return "data transfer error"
	case StatusInternalError:
		return "internal error"
	case StatusLBARange:
		return "LBA out of range"
	case StatusNamespaceNotReady:
		return "namespace not ready"
	case StatusWriteFault:
		return "media write fault"
	case StatusUnrecoveredRead:
		return "unrecovered read error"
	default:
		return fmt.Sprintf("status(%#x)", uint16(s))
	}
}

// Transient reports whether a command failing with this status may succeed if
// retried (the device hiccuped rather than rejected the command). Drivers use
// this to decide between retry/backoff and surfacing the error.
func (s Status) Transient() bool {
	switch s {
	case StatusDataTransferError, StatusInternalError, StatusNamespaceNotReady:
		return true
	default:
		return false
	}
}

// Err converts a status into an error (nil for success).
func (s Status) Err() error {
	if s == StatusSuccess {
		return nil
	}
	return fmt.Errorf("nvme: %v", s)
}

// SubmissionEntry is one SQ slot. Data stands in for the PRP/SGL pointers of
// a real command: for writes it is the source buffer, for reads the
// destination; it must hold NLB*BlockSize bytes.
type SubmissionEntry struct {
	Opcode Opcode
	CID    uint16
	SLBA   uint64
	NLB    uint32 // number of logical blocks (not 0-based, unlike real NVMe)
	Data   []byte
	// SGL is an optional scatter-gather list that replaces Data: the
	// transfer source (writes) or destination (reads) is the concatenation
	// of the segments, each a whole number of blocks. Gather-DMA lets a
	// host submit page-cache pages in place — no staging copy into one
	// contiguous buffer. When SGL is non-empty, Data is ignored.
	SGL [][]byte
	// Prio is the command's completion priority tag for per-class
	// interrupt coalescing: 0 is untagged, 1 the most urgent class, larger
	// values less urgent (drivers encode their delivery class as class+1).
	// See Coalescing.UrgentMax.
	Prio uint8
}

// CompletionEntry is one CQ slot.
type CompletionEntry struct {
	CID    uint16
	Status Status
	SQHead uint16
	Phase  bool
}
