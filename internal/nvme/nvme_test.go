package nvme_test

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"aeolia/internal/nvme"
	"aeolia/internal/sim"
)

func newDev(cfg nvme.Config) (*sim.Engine, *nvme.Device) {
	e := sim.NewEngine(0, nil)
	return e, nvme.NewDevice(e, cfg)
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 1024})
	qp, err := d.CreateQueuePair(32)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 512*3)
	for i := range src {
		src[i] = byte(i % 251)
	}
	wc, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: 10, NLB: 3, Data: src})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if !wc.Done() {
		t.Fatal("write not completed")
	}
	dst := make([]byte, 512*3)
	rc, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: 10, NLB: 3, Data: dst})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if !rc.Done() {
		t.Fatal("read not completed")
	}
	if got := qp.Poll(0); len(got) != 2 {
		t.Fatalf("polled %d CQEs, want 2", len(got))
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("read data differs from written data")
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(8)
	dst := []byte{1, 2, 3}
	dst = make([]byte, 512)
	for i := range dst {
		dst[i] = 0xff
	}
	qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: 5, NLB: 1, Data: dst})
	e.Run(0)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("unwritten block returned non-zero data")
		}
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 8})
	qp, _ := d.CreateQueuePair(8)
	buf := make([]byte, 512*4)
	qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: 6, NLB: 4, Data: buf})
	e.Run(0)
	ces := qp.Poll(0)
	if len(ces) != 1 || ces[0].Status != nvme.StatusLBARange {
		t.Fatalf("got %+v, want one LBA-range error", ces)
	}
}

func TestShortBufferRejected(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 8})
	qp, _ := d.CreateQueuePair(8)
	qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: 0, NLB: 2, Data: make([]byte, 512)})
	e.Run(0)
	ces := qp.Poll(0)
	if len(ces) != 1 || ces[0].Status != nvme.StatusInvalidField {
		t.Fatalf("got %+v, want invalid-field error", ces)
	}
}

func TestReadLatencyMatchesModel(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 4096, NumBlocks: 1024})
	qp, _ := d.CreateQueuePair(8)
	buf := make([]byte, 4096)
	var comp *sim.Completion
	e.Schedule(0, func() {
		comp, _ = qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: 0, NLB: 1, Data: buf})
	})
	e.Run(0)
	want := nvme.P5800X().ServiceTime(nvme.OpRead, 4096)
	if d := comp.At() - want; d < -want/40 || d > want/40 {
		t.Fatalf("completion at %v, want %v (+-2.5%% jitter)", comp.At(), want)
	}
	// 4KB on the P5800X model must be ~3.55µs.
	if comp.At() < 3400*time.Nanosecond || comp.At() > 3700*time.Nanosecond {
		t.Fatalf("4KB read service time %v outside calibrated window", comp.At())
	}
}

func TestChannelParallelismAndBusCap(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 4096, NumBlocks: 1 << 16})
	qp, _ := d.CreateQueuePair(64)
	// Submit 12 concurrent 4KB reads: with 6 channels, the second batch
	// of 6 completes one service time after the first.
	comps := make([]*sim.Completion, 12)
	e.Schedule(0, func() {
		for i := range comps {
			buf := make([]byte, 4096)
			comps[i], _ = qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: uint64(i), NLB: 1, Data: buf})
		}
	})
	e.Run(0)
	svc := nvme.P5800X().ServiceTime(nvme.OpRead, 4096)
	within := func(got, want time.Duration) bool {
		d := got - want
		return d >= -want/20 && d <= want/20
	}
	if !within(comps[5].At(), svc) {
		t.Fatalf("6th completion at %v, want ~%v", comps[5].At(), svc)
	}
	if !within(comps[11].At(), 2*svc) {
		t.Fatalf("12th completion at %v, want ~%v", comps[11].At(), 2*svc)
	}
}

func TestInterruptCallbackOnCompletion(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(8)
	var fires int
	qp.OnCompletion = func(q *nvme.QueuePair) {
		fires++
		if !q.HasCompletions() {
			t.Error("OnCompletion with empty CQ")
		}
	}
	buf := make([]byte, 512)
	qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: 0, NLB: 1, Data: buf})
	e.Run(0)
	if fires != 1 {
		t.Fatalf("OnCompletion fired %d times, want 1", fires)
	}
}

func TestSubmissionQueueFull(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 1024})
	qp, _ := d.CreateQueuePair(4)
	var errFull error
	for i := 0; i < 4; i++ {
		buf := make([]byte, 512)
		_, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: uint64(i), NLB: 1, Data: buf})
		if err != nil {
			errFull = err
		}
	}
	if errFull == nil {
		t.Fatal("expected SQ-full error at depth 4 with 4 submissions")
	}
	e.Run(0)
}

func TestQueuePairLimit(t *testing.T) {
	_, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64, MaxQueuePairs: 2})
	if _, err := d.CreateQueuePair(4); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateQueuePair(4); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateQueuePair(4); err == nil {
		t.Fatal("third queue pair should exceed the limit")
	}
}

func TestFlushCompletes(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(8)
	c, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpFlush})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if !c.Done() {
		t.Fatal("flush did not complete")
	}
}

func TestPhaseBitAlternates(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 1024})
	qp, _ := d.CreateQueuePair(4)
	var phases []bool
	// Drive 8 commands through a depth-4 CQ, polling between batches.
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 4; i++ {
			buf := make([]byte, 512)
			if _, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: uint64(i), NLB: 1, Data: buf}); err != nil {
				// depth-4 ring holds 3 in flight
				break
			}
			e.Run(0)
			for _, ce := range qp.Poll(0) {
				phases = append(phases, ce.Phase)
			}
		}
	}
	if len(phases) < 5 {
		t.Fatalf("too few completions: %d", len(phases))
	}
	// First wrap must flip the phase bit.
	sawFlip := false
	for i := 1; i < len(phases); i++ {
		if phases[i] != phases[i-1] {
			sawFlip = true
		}
	}
	if !sawFlip {
		t.Fatal("phase bit never flipped across CQ wrap")
	}
}

func TestPropertyRoundTripArbitraryData(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 4096})
	qp, _ := d.CreateQueuePair(64)
	f := func(seed int64, blk uint16, n uint8) bool {
		nlb := uint32(n%8) + 1
		slba := uint64(blk) % (4096 - 8)
		src := make([]byte, int(nlb)*512)
		s := seed
		for i := range src {
			s = s*6364136223846793005 + 1442695040888963407
			src[i] = byte(s >> 56)
		}
		qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: slba, NLB: nlb, Data: src})
		e.Run(0)
		dst := make([]byte, len(src))
		qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: slba, NLB: nlb, Data: dst})
		e.Run(0)
		qp.Poll(0)
		return bytes.Equal(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDurabilityTiming(t *testing.T) {
	// A read submitted before a write completes must not observe the
	// write (data moves at completion time).
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(8)
	src := bytes.Repeat([]byte{0xaa}, 512)
	dst := make([]byte, 512)
	e.Schedule(0, func() {
		qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: 3, NLB: 1, Data: src})
	})
	// Read issued 1ns later: its own completion lands on another channel
	// at a similar time; since read base < write base it completes first
	// and must see zeros.
	e.Schedule(1, func() {
		qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpRead, SLBA: 3, NLB: 1, Data: dst})
	})
	e.Run(0)
	if dst[0] != 0 {
		t.Fatal("read completing before write observed its data")
	}
}
