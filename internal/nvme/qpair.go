package nvme

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/trace"
)

// Coalescing configures completion-interrupt aggregation on a queue pair,
// modeled on the NVMe Interrupt Coalescing feature (Set Features 08h): an
// aggregation threshold (MaxEvents) and an aggregation time (MaxDelay). The
// device raises the CQ interrupt when MaxEvents completions have accumulated
// without a notification, or MaxDelay after the first unnotified completion,
// whichever comes first. The zero value disables coalescing: every CQE
// raises its own interrupt.
type Coalescing struct {
	// MaxEvents is the aggregation threshold; values <= 1 disable
	// coalescing.
	MaxEvents int
	// MaxDelay is the aggregation time. When coalescing is enabled and
	// MaxDelay is zero, DefaultCoalesceDelay applies, so a stalled queue
	// can never hold a posted CQE without an eventual interrupt.
	MaxDelay time.Duration
	// UrgentMax enables per-class bypass of the aggregation: a completion
	// whose command carried a non-zero Prio tag <= UrgentMax raises the CQ
	// interrupt immediately (covering everything aggregated so far)
	// instead of waiting for MaxEvents/MaxDelay. 0 disables the bypass.
	UrgentMax uint8
	// ClassDelays grades the aggregation time by completion class:
	// ClassDelays[p-1] is the aggregation-time budget for a completion
	// whose command carried priority tag p. A pending completion with a
	// shorter budget tightens the armed timer (the interrupt fires at the
	// minimum deadline across everything aggregated), so an impatient
	// class never waits out a patient one's full MaxDelay. Tags beyond the
	// table, untagged completions, and zero entries all use MaxDelay;
	// entries are clamped to MaxDelay (MaxDelay stays the worst case the
	// driver's lost-notification watchdog may assume). Nil disables
	// grading: every completion waits MaxDelay.
	ClassDelays []time.Duration
}

// delayFor returns the aggregation-time budget for a completion carrying
// priority tag prio (0 = untagged).
func (c Coalescing) delayFor(prio uint8) time.Duration {
	if prio == 0 || int(prio) > len(c.ClassDelays) {
		return c.MaxDelay
	}
	d := c.ClassDelays[prio-1]
	if d <= 0 || d > c.MaxDelay {
		return c.MaxDelay
	}
	return d
}

// GradedDelays builds a ClassDelays table for n priority tags where each
// more-urgent class halves the aggregation time: tag n (least urgent)
// waits the full maxDelay, tag n-1 half of it, and so on. The most urgent
// tags are normally also covered by UrgentMax and never consult the table.
func GradedDelays(maxDelay time.Duration, n int) []time.Duration {
	ds := make([]time.Duration, n)
	for i := range ds {
		ds[i] = maxDelay >> uint(n-1-i)
	}
	return ds
}

// DefaultCoalesceDelay is the aggregation time used when Coalescing enables
// the threshold but leaves MaxDelay zero (100µs, the granularity real NVMe
// controllers use for the aggregation-time field).
const DefaultCoalesceDelay = 100 * time.Microsecond

// enabled reports whether the configuration actually aggregates.
func (c Coalescing) enabled() bool { return c.MaxEvents > 1 }

// QueuePair is one NVMe submission/completion queue pair mapped into a
// driver's address space. The host fills SQ slots and rings the tail
// doorbell; the device posts CQEs with alternating phase bits and the host
// consumes them, updating the head doorbell.
//
// The ring indices follow the SPSC publication discipline of the zero-copy
// datapath: each cursor has exactly one writer (host side: sqTail, cqHead;
// device side: sqHead, cqTail, cqCount) and is published with an atomic
// store after the slots it covers are written, so the opposite side's atomic
// load observes fully written entries — no lock anywhere on the queue-pair
// hot path.
type QueuePair struct {
	ID    int
	dev   *Device
	depth int

	sq     []SubmissionEntry
	sqTail atomic.Int64 // host-published: next SQ slot to fill
	sqHead atomic.Int64 // device-published: next SQ slot to consume

	cq      []CompletionEntry
	cqHead  atomic.Int64 // host-published: next CQ slot to consume
	cqTail  atomic.Int64 // device-published: next CQ slot to post
	phase   bool
	cqCount atomic.Int64 // occupied CQ slots

	// Vector is the interrupt vector the device signals on completion
	// (the MSI-X table entry AeoKern programs).
	Vector int

	// OnCompletion, if set, is invoked each time a CQE is posted — the
	// "wire" of the MSI-X interrupt. Polling drivers leave it nil.
	OnCompletion func(qp *QueuePair)

	// pending maps CID -> per-command completion handles, letting driver
	// models wait for specific commands.
	pending map[uint16]*sim.Completion
	// prio remembers in-flight commands' non-zero priority tags so the
	// completion side can apply the per-class coalescing bypass.
	prio map[uint16]uint8

	nextCID uint16

	// coalesce is the interrupt-coalescing configuration; unNotified
	// counts CQEs posted since the last interrupt, coalesceEv is the
	// armed aggregation timer and coalesceDeadline its expiry.
	coalesce         Coalescing
	unNotified       int
	coalesceEv       sim.Timer
	coalesceDeadline time.Duration

	// Submitted counts commands accepted into the SQ.
	Submitted uint64
	// Completed counts CQEs posted.
	Completed uint64
	// SQDoorbells counts SQ tail doorbell writes; with batched submission
	// it grows slower than Submitted.
	SQDoorbells uint64
	// MaxSQBurst is the largest number of commands one doorbell write
	// handed to the device.
	MaxSQBurst int
	// IRQRaised counts CQ interrupts actually raised; IRQCoalesced counts
	// completions that were aggregated into a later interrupt instead of
	// raising their own; IRQSuppressed counts aggregations cancelled
	// because the host drained the CQ by polling first. Atomic so tests
	// and monitors may read them while a simulation goroutine mutates.
	IRQRaised     atomic.Uint64
	IRQCoalesced  atomic.Uint64
	IRQSuppressed atomic.Uint64
	// IRQBypassed counts urgent-class completions that bypassed an armed
	// aggregation and raised their interrupt immediately (Coalescing.UrgentMax).
	IRQBypassed atomic.Uint64
}

// emit records a trace event against the owning device's engine; a no-op
// when tracing is off. Queue-side events have no core context (core -1).
func (qp *QueuePair) emit(typ trace.Type, cid uint32, lba, aux uint64) {
	if tr := qp.dev.eng.Tracer; tr != nil {
		tr.Emit(qp.dev.eng.Now(), typ, -1, qp.ID, cid, lba, aux)
	}
}

func newQueuePair(d *Device, id, depth int) *QueuePair {
	return &QueuePair{
		ID:      id,
		dev:     d,
		depth:   depth,
		sq:      make([]SubmissionEntry, depth),
		cq:      make([]CompletionEntry, depth),
		phase:   true,
		pending: make(map[uint16]*sim.Completion),
		prio:    make(map[uint16]uint8),
	}
}

// Depth returns the queue depth.
func (qp *QueuePair) Depth() int { return qp.depth }

// SetCoalescing configures CQ interrupt coalescing. Reconfiguring an active
// queue flushes any armed aggregation immediately so no completion is
// stranded under the old thresholds.
func (qp *QueuePair) SetCoalescing(c Coalescing) {
	if c.enabled() && c.MaxDelay <= 0 {
		c.MaxDelay = DefaultCoalesceDelay
	}
	if qp.unNotified > 0 {
		qp.raiseCoalesced()
	}
	qp.coalesce = c
}

// CoalescingConfig returns the active coalescing configuration.
func (qp *QueuePair) CoalescingConfig() Coalescing { return qp.coalesce }

// NotifyPending reports whether completions are sitting in the CQ waiting
// for the coalescing aggregation to raise their interrupt. Watchdogs use it
// to distinguish an intentionally-held notification from a lost one.
func (qp *QueuePair) NotifyPending() bool { return qp.unNotified > 0 }

// CoalesceDeadline returns the armed aggregation timer's expiry (only
// meaningful while NotifyPending).
func (qp *QueuePair) CoalesceDeadline() time.Duration { return qp.coalesceDeadline }

// Inflight returns the number of commands submitted whose CQE has not yet
// been posted.
func (qp *QueuePair) Inflight() int {
	return int(qp.Submitted - qp.Completed)
}

// ErrSQFull is returned by Submit when the submission queue has no free
// slot.
var ErrSQFull = errors.New("nvme: submission queue full")

// ErrDoorbell is returned for out-of-range or inconsistent doorbell writes
// (a real controller would raise an asynchronous "invalid doorbell write
// value" error, AER status 0x1).
var ErrDoorbell = errors.New("nvme: invalid doorbell write")

// Submit places a command into the submission queue and rings the tail
// doorbell. It returns a completion handle that fires when the CQE is
// posted. The caller must not reuse e.Data until completion.
func (qp *QueuePair) Submit(e SubmissionEntry) (*sim.Completion, error) {
	if qp.Inflight() >= qp.depth-1 {
		return nil, fmt.Errorf("%w: queue %d", ErrSQFull, qp.ID)
	}
	qp.nextCID++
	e.CID = qp.nextCID
	tail := int(qp.sqTail.Load())
	qp.sq[tail] = e
	comp := sim.NewCompletion()
	qp.pending[e.CID] = comp
	if e.Prio != 0 {
		qp.prio[e.CID] = e.Prio
	}
	qp.emit(trace.SQEPrep, uint32(e.CID), e.SLBA, uint64(e.NLB))

	// Ringing the doorbell hands the command to the device.
	if err := qp.WriteSQDoorbell((tail + 1) % qp.depth); err != nil {
		delete(qp.pending, e.CID)
		delete(qp.prio, e.CID)
		return nil, err
	}
	return comp, nil
}

// Submitted pairs a batch-accepted command's assigned CID with its
// completion handle.
type Submitted struct {
	CID  uint16
	Done *sim.Completion
}

// SubmitBatch places all entries into the submission queue and rings the
// tail doorbell once — the batched-submission hot path: N commands, one
// MMIO write, and the device drains the whole burst. The batch is
// all-or-nothing: if the SQ lacks room for every entry, nothing is enqueued
// and ErrSQFull is returned. Callers must not reuse any entry's Data until
// its completion fires.
func (qp *QueuePair) SubmitBatch(entries []SubmissionEntry) ([]Submitted, error) {
	n := len(entries)
	if n == 0 {
		return nil, nil
	}
	if qp.Inflight()+n > qp.depth-1 {
		return nil, fmt.Errorf("%w: queue %d (batch %d, free %d)",
			ErrSQFull, qp.ID, n, qp.depth-1-qp.Inflight())
	}
	out := make([]Submitted, n)
	tail := int(qp.sqTail.Load())
	for i, e := range entries {
		qp.nextCID++
		e.CID = qp.nextCID
		qp.sq[tail] = e
		tail = (tail + 1) % qp.depth
		comp := sim.NewCompletion()
		qp.pending[e.CID] = comp
		if e.Prio != 0 {
			qp.prio[e.CID] = e.Prio
		}
		out[i] = Submitted{CID: e.CID, Done: comp}
		qp.emit(trace.SQEPrep, uint32(e.CID), e.SLBA, uint64(e.NLB))
	}
	if err := qp.WriteSQDoorbell(tail); err != nil {
		for _, s := range out {
			delete(qp.pending, s.CID)
			delete(qp.prio, s.CID)
		}
		return nil, err
	}
	return out, nil
}

// WriteSQDoorbell writes the submission-queue tail doorbell: the device
// consumes every SQ slot from the current head up to (excluding) tail. An
// out-of-range value is rejected, like a controller flagging an invalid
// doorbell write instead of reading garbage entries.
func (qp *QueuePair) WriteSQDoorbell(tail int) error {
	if tail < 0 || tail >= qp.depth {
		return fmt.Errorf("%w: SQ tail %d (depth %d)", ErrDoorbell, tail, qp.depth)
	}
	qp.SQDoorbells++
	head := int(qp.sqHead.Load())
	burst := (tail - head + qp.depth) % qp.depth
	if burst > qp.MaxSQBurst {
		qp.MaxSQBurst = burst
	}
	qp.emit(trace.DoorbellWrite, trace.NoCID, 0, uint64(burst))
	// Publish the new tail before the device consumes: the slots it covers
	// are fully written above.
	qp.sqTail.Store(int64(tail))
	for head != tail {
		e := qp.sq[head]
		head = (head + 1) % qp.depth
		qp.sqHead.Store(int64(head))
		qp.Submitted++
		qp.dev.process(qp, e)
	}
	return nil
}

// WriteCQDoorbell writes the completion-queue head doorbell, releasing the
// consumed CQ slots back to the device. The head may only advance over
// occupied slots; moving it past the tail (or out of range) is rejected.
func (qp *QueuePair) WriteCQDoorbell(head int) error {
	if head < 0 || head >= qp.depth {
		return fmt.Errorf("%w: CQ head %d (depth %d)", ErrDoorbell, head, qp.depth)
	}
	dist := (head - int(qp.cqHead.Load()) + qp.depth) % qp.depth
	if dist > int(qp.cqCount.Load()) {
		return fmt.Errorf("%w: CQ head %d advances past tail %d", ErrDoorbell, head, qp.cqTail.Load())
	}
	qp.cqHead.Store(int64(head))
	qp.cqCount.Add(int64(-dist))
	return nil
}

// postCompletion is called by the device when a command finishes.
func (qp *QueuePair) postCompletion(cid uint16, st Status) {
	if int(qp.cqCount.Load()) == qp.depth {
		// A real device would stall; with SQ depth == CQ depth this
		// cannot happen unless the host never consumes CQEs it was
		// notified about.
		panic("nvme: completion queue overflow")
	}
	tail := int(qp.cqTail.Load())
	qp.cq[tail] = CompletionEntry{
		CID:    cid,
		Status: st,
		SQHead: uint16(qp.sqHead.Load()),
		Phase:  qp.phase,
	}
	tail = (tail + 1) % qp.depth
	// The phase bit makes the freshly written CQE self-describing; the tail
	// publication follows the slot write, mirroring the SQ side.
	qp.cqTail.Store(int64(tail))
	if tail == 0 {
		qp.phase = !qp.phase
	}
	qp.cqCount.Add(1)
	qp.Completed++
	qp.emit(trace.CQEPost, uint32(cid), 0, uint64(st))

	// The command's completion handle fires when its CQE becomes visible:
	// this is the instant a poller could discover it.
	if comp := qp.pending[cid]; comp != nil {
		delete(qp.pending, cid)
		comp.FireAt(qp.dev.eng.Now())
	}

	prio := qp.prio[cid]
	delete(qp.prio, cid)
	qp.signalCompletion(cid, prio)
}

// signalCompletion decides whether the freshly posted CQE (cid) raises the
// CQ interrupt now, joins an armed aggregation, or starts one. An
// urgent-tagged completion (prio <= UrgentMax, non-zero) never waits:
// it fires the interrupt immediately, covering everything aggregated so
// far.
func (qp *QueuePair) signalCompletion(cid uint16, prio uint8) {
	if qp.OnCompletion == nil {
		return
	}
	if !qp.coalesce.enabled() {
		qp.IRQRaised.Add(1)
		qp.emit(trace.IRQRaise, uint32(cid), 0, 1)
		qp.OnCompletion(qp)
		return
	}
	qp.unNotified++
	if qp.coalesce.UrgentMax > 0 && prio != 0 && prio <= qp.coalesce.UrgentMax {
		qp.IRQBypassed.Add(1)
		qp.emit(trace.IRQBypass, uint32(cid), 0, uint64(qp.unNotified))
		qp.raiseCoalesced()
		return
	}
	if qp.unNotified >= qp.coalesce.MaxEvents {
		qp.raiseCoalesced()
		return
	}
	qp.IRQCoalesced.Add(1)
	qp.emit(trace.IRQCoalesce, uint32(cid), 0, uint64(qp.unNotified))
	deadline := qp.dev.eng.Now() + qp.coalesce.delayFor(prio)
	if !qp.coalesceEv.Armed() {
		qp.armCoalesce(deadline)
	} else if deadline < qp.coalesceDeadline {
		// A more impatient class joined the aggregation: tighten the armed
		// timer to its budget. The deadline only ever moves earlier.
		qp.coalesceEv.Cancel()
		qp.armCoalesce(deadline)
	}
}

// armCoalesce schedules the aggregation timer to fire at deadline.
func (qp *QueuePair) armCoalesce(deadline time.Duration) {
	qp.coalesceDeadline = deadline
	qp.coalesceEv = qp.dev.eng.Schedule(deadline-qp.dev.eng.Now(), func() {
		qp.coalesceEv = sim.Timer{}
		if qp.unNotified > 0 {
			qp.raiseCoalesced()
		}
	})
}

// raiseCoalesced fires the aggregated CQ interrupt and resets the
// aggregation state.
func (qp *QueuePair) raiseCoalesced() {
	if qp.coalesceEv.Armed() {
		qp.coalesceEv.Cancel()
	}
	qp.coalesceEv = sim.Timer{}
	covered := qp.unNotified
	qp.unNotified = 0
	if qp.OnCompletion == nil {
		return
	}
	qp.IRQRaised.Add(1)
	qp.emit(trace.IRQRaise, trace.NoCID, 0, uint64(covered))
	qp.OnCompletion(qp)
}

// Poll consumes up to max CQEs (0 = all available), firing their completion
// handles, and returns them. This is the polling/interrupt-handler consume
// path; it advances the CQ head doorbell.
func (qp *QueuePair) Poll(max int) []CompletionEntry {
	var out []CompletionEntry
	for qp.cqCount.Load() > 0 && (max == 0 || len(out) < max) {
		head := int(qp.cqHead.Load())
		ce := qp.cq[head]
		qp.cqHead.Store(int64((head + 1) % qp.depth))
		qp.cqCount.Add(-1)
		out = append(out, ce)
		qp.emit(trace.CQEConsume, uint32(ce.CID), 0, uint64(ce.Status))
	}
	if qp.cqCount.Load() == 0 && qp.unNotified > 0 {
		// The host consumed every aggregated CQE by polling; the armed
		// interrupt would only find an empty queue, so suppress it.
		qp.IRQSuppressed.Add(uint64(qp.unNotified))
		qp.emit(trace.IRQSuppress, trace.NoCID, 0, uint64(qp.unNotified))
		qp.unNotified = 0
		if qp.coalesceEv.Armed() {
			qp.coalesceEv.Cancel()
		}
		qp.coalesceEv = sim.Timer{}
	}
	return out
}

// Ring-state accessors for invariant checking (property tests): the SQ
// head/tail and CQ head/tail indices and the device's current phase bit.
// All index reads are atomic loads of the publishing side's cursor.
func (qp *QueuePair) SQHead() int     { return int(qp.sqHead.Load()) }
func (qp *QueuePair) SQTail() int     { return int(qp.sqTail.Load()) }
func (qp *QueuePair) CQHead() int     { return int(qp.cqHead.Load()) }
func (qp *QueuePair) CQTail() int     { return int(qp.cqTail.Load()) }
func (qp *QueuePair) PhaseBit() bool  { return qp.phase }
func (qp *QueuePair) CQOccupied() int { return int(qp.cqCount.Load()) }

// HasCompletions reports whether unconsumed CQEs are pending (the check a
// shared-vector interrupt handler performs to identify the source, §4.2).
func (qp *QueuePair) HasCompletions() bool { return qp.cqCount.Load() > 0 }

// LastCID returns the command identifier assigned by the most recent
// Submit.
func (qp *QueuePair) LastCID() uint16 { return qp.nextCID }
