package nvme

import (
	"errors"
	"fmt"

	"aeolia/internal/sim"
)

// QueuePair is one NVMe submission/completion queue pair mapped into a
// driver's address space. The host fills SQ slots and rings the tail
// doorbell; the device posts CQEs with alternating phase bits and the host
// consumes them, updating the head doorbell.
type QueuePair struct {
	ID    int
	dev   *Device
	depth int

	sq     []SubmissionEntry
	sqTail int
	sqHead int

	cq      []CompletionEntry
	cqHead  int
	cqTail  int
	phase   bool
	cqCount int // occupied CQ slots

	// Vector is the interrupt vector the device signals on completion
	// (the MSI-X table entry AeoKern programs).
	Vector int

	// OnCompletion, if set, is invoked each time a CQE is posted — the
	// "wire" of the MSI-X interrupt. Polling drivers leave it nil.
	OnCompletion func(qp *QueuePair)

	// pending maps CID -> per-command completion handles, letting driver
	// models wait for specific commands.
	pending map[uint16]*sim.Completion

	nextCID uint16

	// Submitted counts commands accepted into the SQ.
	Submitted uint64
	// Completed counts CQEs posted.
	Completed uint64
}

func newQueuePair(d *Device, id, depth int) *QueuePair {
	return &QueuePair{
		ID:      id,
		dev:     d,
		depth:   depth,
		sq:      make([]SubmissionEntry, depth),
		cq:      make([]CompletionEntry, depth),
		phase:   true,
		pending: make(map[uint16]*sim.Completion),
	}
}

// Depth returns the queue depth.
func (qp *QueuePair) Depth() int { return qp.depth }

// Inflight returns the number of commands submitted whose CQE has not yet
// been posted.
func (qp *QueuePair) Inflight() int {
	return int(qp.Submitted - qp.Completed)
}

// ErrSQFull is returned by Submit when the submission queue has no free
// slot.
var ErrSQFull = errors.New("nvme: submission queue full")

// ErrDoorbell is returned for out-of-range or inconsistent doorbell writes
// (a real controller would raise an asynchronous "invalid doorbell write
// value" error, AER status 0x1).
var ErrDoorbell = errors.New("nvme: invalid doorbell write")

// Submit places a command into the submission queue and rings the tail
// doorbell. It returns a completion handle that fires when the CQE is
// posted. The caller must not reuse e.Data until completion.
func (qp *QueuePair) Submit(e SubmissionEntry) (*sim.Completion, error) {
	if qp.Inflight() >= qp.depth-1 {
		return nil, fmt.Errorf("%w: queue %d", ErrSQFull, qp.ID)
	}
	qp.nextCID++
	e.CID = qp.nextCID
	qp.sq[qp.sqTail] = e
	comp := sim.NewCompletion()
	qp.pending[e.CID] = comp

	// Ringing the doorbell hands the command to the device.
	if err := qp.WriteSQDoorbell((qp.sqTail + 1) % qp.depth); err != nil {
		delete(qp.pending, e.CID)
		return nil, err
	}
	return comp, nil
}

// WriteSQDoorbell writes the submission-queue tail doorbell: the device
// consumes every SQ slot from the current head up to (excluding) tail. An
// out-of-range value is rejected, like a controller flagging an invalid
// doorbell write instead of reading garbage entries.
func (qp *QueuePair) WriteSQDoorbell(tail int) error {
	if tail < 0 || tail >= qp.depth {
		return fmt.Errorf("%w: SQ tail %d (depth %d)", ErrDoorbell, tail, qp.depth)
	}
	qp.sqTail = tail
	for qp.sqHead != tail {
		e := qp.sq[qp.sqHead]
		qp.sqHead = (qp.sqHead + 1) % qp.depth
		qp.Submitted++
		qp.dev.process(qp, e)
	}
	return nil
}

// WriteCQDoorbell writes the completion-queue head doorbell, releasing the
// consumed CQ slots back to the device. The head may only advance over
// occupied slots; moving it past the tail (or out of range) is rejected.
func (qp *QueuePair) WriteCQDoorbell(head int) error {
	if head < 0 || head >= qp.depth {
		return fmt.Errorf("%w: CQ head %d (depth %d)", ErrDoorbell, head, qp.depth)
	}
	dist := (head - qp.cqHead + qp.depth) % qp.depth
	if dist > qp.cqCount {
		return fmt.Errorf("%w: CQ head %d advances past tail %d", ErrDoorbell, head, qp.cqTail)
	}
	qp.cqHead = head
	qp.cqCount -= dist
	return nil
}

// postCompletion is called by the device when a command finishes.
func (qp *QueuePair) postCompletion(cid uint16, st Status) {
	if qp.cqCount == qp.depth {
		// A real device would stall; with SQ depth == CQ depth this
		// cannot happen unless the host never consumes CQEs it was
		// notified about.
		panic("nvme: completion queue overflow")
	}
	qp.cq[qp.cqTail] = CompletionEntry{
		CID:    cid,
		Status: st,
		SQHead: uint16(qp.sqHead),
		Phase:  qp.phase,
	}
	qp.cqTail = (qp.cqTail + 1) % qp.depth
	if qp.cqTail == 0 {
		qp.phase = !qp.phase
	}
	qp.cqCount++
	qp.Completed++

	// The command's completion handle fires when its CQE becomes visible:
	// this is the instant a poller could discover it.
	if comp := qp.pending[cid]; comp != nil {
		delete(qp.pending, cid)
		comp.FireAt(qp.dev.eng.Now())
	}

	if qp.OnCompletion != nil {
		qp.OnCompletion(qp)
	}
}

// Poll consumes up to max CQEs (0 = all available), firing their completion
// handles, and returns them. This is the polling/interrupt-handler consume
// path; it advances the CQ head doorbell.
func (qp *QueuePair) Poll(max int) []CompletionEntry {
	var out []CompletionEntry
	for qp.cqCount > 0 && (max == 0 || len(out) < max) {
		ce := qp.cq[qp.cqHead]
		qp.cqHead = (qp.cqHead + 1) % qp.depth
		qp.cqCount--
		out = append(out, ce)
	}
	return out
}

// HasCompletions reports whether unconsumed CQEs are pending (the check a
// shared-vector interrupt handler performs to identify the source, §4.2).
func (qp *QueuePair) HasCompletions() bool { return qp.cqCount > 0 }

// LastCID returns the command identifier assigned by the most recent
// Submit.
func (qp *QueuePair) LastCID() uint16 { return qp.nextCID }
