package nvme_test

import (
	"errors"
	"testing"

	"aeolia/internal/nvme"
)

// TestSubmitFullSQ: the submission queue holds depth-1 in-flight commands;
// the next Submit is rejected with ErrSQFull, and draining completions frees
// the slots again.
func TestSubmitFullSQ(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(4)
	buf := make([]byte, 512)
	for i := 0; i < 3; i++ {
		if _, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: uint64(i), NLB: 1, Data: buf}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if qp.Inflight() != 3 {
		t.Fatalf("Inflight = %d, want 3", qp.Inflight())
	}
	_, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: 9, NLB: 1, Data: buf})
	if !errors.Is(err, nvme.ErrSQFull) {
		t.Fatalf("submit into full SQ: %v, want ErrSQFull", err)
	}
	// Complete the backlog; the queue accepts submissions again.
	e.Run(0)
	qp.Poll(0)
	if _, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: 9, NLB: 1, Data: buf}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestCQWraparoundPhaseFlip: CQEs posted before the completion-queue tail
// wraps carry the initial phase bit; entries after the wrap carry the
// flipped phase — the mechanism a host uses to detect new entries without a
// doorbell read.
func TestCQWraparoundPhaseFlip(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(4)
	buf := make([]byte, 512)
	submitN := func(n int) []nvme.CompletionEntry {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: uint64(i), NLB: 1, Data: buf}); err != nil {
				t.Fatal(err)
			}
		}
		e.Run(0)
		ces := qp.Poll(0)
		if len(ces) != n {
			t.Fatalf("polled %d CQEs, want %d", len(ces), n)
		}
		return ces
	}
	// First lap: CQ slots 0..2, initial phase.
	for i, ce := range submitN(3) {
		if !ce.Phase {
			t.Errorf("pre-wrap CQE %d has phase=false, want true", i)
		}
	}
	// Second lap: slot 3 still carries the old phase, then the tail wraps
	// to 0 and the phase flips for slots 0..1.
	ces := submitN(3)
	if !ces[0].Phase {
		t.Error("last pre-wrap slot lost the old phase bit")
	}
	for i, ce := range ces[1:] {
		if ce.Phase {
			t.Errorf("post-wrap CQE %d has phase=true, want flipped", i)
		}
	}
}

// TestSQDoorbellOutOfRange: out-of-range tail values are rejected with
// ErrDoorbell and dispatch nothing.
func TestSQDoorbellOutOfRange(t *testing.T) {
	_, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(8)
	for _, tail := range []int{-1, 8, 100} {
		if err := qp.WriteSQDoorbell(tail); !errors.Is(err, nvme.ErrDoorbell) {
			t.Errorf("WriteSQDoorbell(%d) = %v, want ErrDoorbell", tail, err)
		}
	}
	if qp.Submitted != 0 {
		t.Errorf("rejected doorbells dispatched %d commands", qp.Submitted)
	}
	// An idempotent rewrite of the current tail dispatches nothing.
	if err := qp.WriteSQDoorbell(0); err != nil {
		t.Fatalf("no-op doorbell: %v", err)
	}
	if qp.Submitted != 0 {
		t.Errorf("no-op doorbell dispatched %d commands", qp.Submitted)
	}
}

// TestCQDoorbellOutOfRange: the CQ head doorbell rejects out-of-range values
// and any head that advances past the tail, mutating nothing on rejection.
func TestCQDoorbellOutOfRange(t *testing.T) {
	e, d := newDev(nvme.Config{BlockSize: 512, NumBlocks: 64})
	qp, _ := d.CreateQueuePair(8)
	buf := make([]byte, 512)
	if _, err := qp.Submit(nvme.SubmissionEntry{Opcode: nvme.OpWrite, SLBA: 1, NLB: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if !qp.HasCompletions() {
		t.Fatal("no CQE posted")
	}
	for _, head := range []int{-1, 8, 1000} {
		if err := qp.WriteCQDoorbell(head); !errors.Is(err, nvme.ErrDoorbell) {
			t.Errorf("WriteCQDoorbell(%d) = %v, want ErrDoorbell", head, err)
		}
	}
	// One slot is occupied (head=0, tail=1): releasing two is inconsistent.
	if err := qp.WriteCQDoorbell(2); !errors.Is(err, nvme.ErrDoorbell) {
		t.Errorf("CQ head past tail = %v, want ErrDoorbell", err)
	}
	// The rejected writes must not have consumed the entry.
	if !qp.HasCompletions() {
		t.Fatal("rejected doorbell writes consumed the CQE")
	}
	if err := qp.WriteCQDoorbell(1); err != nil {
		t.Fatalf("valid CQ doorbell: %v", err)
	}
	if qp.HasCompletions() {
		t.Error("valid doorbell did not release the slot")
	}
}
