package nvme

import (
	"fmt"
	"sync/atomic"
)

// SPSC is a bounded lock-free single-producer/single-consumer ring. The
// zero-copy datapath stages commands through one of these per (thread, queue
// pair): the submitting thread is the only producer and the driver's
// submission context the only consumer, so no lock is needed — correctness
// rests purely on index publication order.
//
// Memory model: Push writes the slot, then publishes it with an atomic store
// of tail; Pop reads tail with an atomic load before touching the slot, and
// releases the slot by atomically storing head, which Push loads before
// overwriting. Go's atomics are sequentially consistent, so the slot write
// happens-before the consumer's read and the consumer's read happens-before
// the producer's reuse — the classic SPSC discipline, checked under -race by
// TestSPSCRaceHammer with a real producer/consumer goroutine pair.
//
// Indices are free-running uint64 counters (slot = index & mask), so
// full/empty are distinguishable without a spare slot: the ring is empty when
// head == tail and full when tail-head == capacity.
type SPSC[T any] struct {
	mask  uint64
	slots []T
	head  atomic.Uint64 // consumer cursor: next slot to Pop
	_     [48]byte      // keep producer/consumer cursors off one cache line
	tail  atomic.Uint64 // producer cursor: next slot to Push
}

// NewSPSC builds a ring with the given capacity, rounded up to a power of
// two (minimum 2) so the index mask replaces a modulo.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{mask: uint64(n - 1), slots: make([]T, n)}
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.slots) }

// Len returns the number of staged items (racy but monotone-consistent when
// read by either end: the producer sees at least the true count, the
// consumer at most).
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Push stages one item; false when the ring is full. Producer side only.
func (r *SPSC[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop takes the oldest staged item; false when the ring is empty. Consumer
// side only.
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		return zero, false
	}
	v := r.slots[h&r.mask]
	r.slots[h&r.mask] = zero // release the slot's references
	r.head.Store(h + 1)
	return v, true
}

// String renders the cursors (diagnostics).
func (r *SPSC[T]) String() string {
	return fmt.Sprintf("spsc[cap=%d head=%d tail=%d]", len(r.slots), r.head.Load(), r.tail.Load())
}
