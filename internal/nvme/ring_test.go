package nvme

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// Property: against a slice model, any interleaving of push/pop requests
// agrees on acceptance (full/empty refusal) and on FIFO contents.
func TestSPSCQuickModel(t *testing.T) {
	check := func(capHint uint8, ops []bool) bool {
		r := NewSPSC[int](int(capHint%16) + 2)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				ok := r.Push(next)
				wantOK := len(model) < r.Cap()
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := r.Pop()
				wantOK := len(model) > 0
				if ok != wantOK {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ring rounds its capacity up to a power of two and never
// loses or duplicates an item across wrap-around.
func TestSPSCQuickWrap(t *testing.T) {
	check := func(capHint uint8, rounds uint8) bool {
		r := NewSPSC[uint32](int(capHint % 32))
		if c := r.Cap(); c < 2 || c&(c-1) != 0 {
			return false
		}
		var got []uint32
		v := uint32(0)
		for i := 0; i < int(rounds); i++ {
			for r.Push(v) {
				v++
			}
			for {
				x, ok := r.Pop()
				if !ok {
					break
				}
				got = append(got, x)
			}
		}
		for i, x := range got {
			if x != uint32(i) {
				return false
			}
		}
		return len(got) == int(v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSPSCRaceHammer runs a real producer goroutine against a real consumer
// goroutine — the configuration the SPSC publication discipline is written
// for. Under -race this is the memory-model check: a slot read not ordered
// after its index publication would be flagged.
func TestSPSCRaceHammer(t *testing.T) {
	const n = 1 << 14
	r := NewSPSC[uint64](64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var sum, count uint64
	go func() {
		defer wg.Done()
		for count < n {
			if v, ok := r.Pop(); ok {
				if v != count {
					t.Errorf("popped %d, want %d", v, count)
					return
				}
				sum += v
				count++
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if want := uint64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}
