package raft

import "fmt"

// Entry is one replicated log record. An empty Data marks the no-op a new
// leader appends to commit its term (and the read markers the cluster layer
// serializes through the log).
type Entry struct {
	Term uint64
	Data []byte
}

// Log is a raft log with prefix compaction by truncation: indices are
// 1-based and global, but only entries above the compaction boundary are
// stored. The boundary entry's term is retained so AppendEntries consistency
// checks keep working at the edge (snapshot-free compaction: the cluster
// only discards prefixes every live replica has already stored, so no
// snapshot transfer path is needed).
type Log struct {
	offset    uint64 // index of the first stored entry
	boundTerm uint64 // term of entry offset-1 (0 when offset == 1)
	entries   []Entry
}

// NewLog returns an empty log starting at index 1.
func NewLog() *Log { return &Log{offset: 1} }

// FirstIndex returns the index of the first stored (non-compacted) entry.
func (l *Log) FirstIndex() uint64 { return l.offset }

// LastIndex returns the index of the last entry (offset-1 when empty).
func (l *Log) LastIndex() uint64 { return l.offset + uint64(len(l.entries)) - 1 }

// Len returns the number of stored entries.
func (l *Log) Len() int { return len(l.entries) }

// Term returns the term of entry i. It answers for the compaction boundary
// (offset-1) from the retained boundary term; ok is false outside
// [offset-1, LastIndex].
func (l *Log) Term(i uint64) (uint64, bool) {
	if i == l.offset-1 {
		return l.boundTerm, true
	}
	if i < l.offset || i > l.LastIndex() {
		return 0, false
	}
	return l.entries[i-l.offset].Term, true
}

// Entry returns entry i; ok is false outside the stored range.
func (l *Log) Entry(i uint64) (Entry, bool) {
	if i < l.offset || i > l.LastIndex() {
		return Entry{}, false
	}
	return l.entries[i-l.offset], true
}

// Entries returns a copy of entries in [lo, hi] clamped to the stored range.
func (l *Log) Entries(lo, hi uint64) []Entry {
	if lo < l.offset {
		lo = l.offset
	}
	if last := l.LastIndex(); hi > last {
		hi = last
	}
	if lo > hi {
		return nil
	}
	out := make([]Entry, hi-lo+1)
	copy(out, l.entries[lo-l.offset:hi-l.offset+1])
	return out
}

// Append adds entries at the tail and returns the new last index.
func (l *Log) Append(es ...Entry) uint64 {
	l.entries = append(l.entries, es...)
	return l.LastIndex()
}

// TruncateSuffix drops every entry with index >= from (the conflict path of
// AppendEntries). Truncating at or below the compaction boundary panics:
// compacted entries are by construction committed everywhere, and a
// committed entry must never be truncated.
func (l *Log) TruncateSuffix(from uint64) {
	if from < l.offset {
		panic(fmt.Sprintf("raft: suffix truncation at %d below compaction boundary %d", from, l.offset))
	}
	if from > l.LastIndex() {
		return
	}
	l.entries = l.entries[:from-l.offset]
}

// CompactPrefix discards entries with index <= to, retaining the boundary
// term. Compacting beyond the last entry is clamped; compacting below the
// current boundary is a no-op.
func (l *Log) CompactPrefix(to uint64) {
	if to >= l.offset+uint64(len(l.entries)) {
		to = l.offset + uint64(len(l.entries)) - 1
	}
	if to < l.offset {
		return
	}
	t, _ := l.Term(to)
	l.entries = append([]Entry(nil), l.entries[to-l.offset+1:]...)
	l.offset = to + 1
	l.boundTerm = t
}
