package raft

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
)

// The property harness drives a 3-node cluster through a seeded schedule of
// ticks, proposals, message drops/dups/reorders, crash-restarts, and
// compactions, checking after every round that:
//
//  1. no committed entry is ever truncated or rewritten (an entry observed
//     committed once stays byte-identical at its index forever),
//  2. terms are monotonic per index within every log,
//  3. matching prefixes: if two logs agree on the term at index i, they hold
//     identical entries at every stored index <= i (the Log Matching
//     property).
//
// The schedule is derived from a single uint64 via splitmix64, so quick.Check
// explores many seeds and every failure reproduces from its seed.

type propRng struct{ s uint64 }

func (r *propRng) next() uint64 {
	r.s++
	return splitmix64(r.s)
}
func (r *propRng) intn(n int) int { return int(r.next() % uint64(n)) }

func entryHash(e Entry) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(e.Term >> (8 * i))
	}
	h.Write(b[:])
	h.Write(e.Data)
	return h.Sum64()
}

type propCluster struct {
	rng     *propRng
	nodes   map[int]*Node
	ids     []int
	inbox   map[int][]Message
	// committed[index] = hash of the entry first observed committed there.
	committed map[uint64]uint64
	maxCommit map[int]uint64
	proposals int
}

func newPropCluster(seed uint64) *propCluster {
	pc := &propCluster{rng: &propRng{s: seed}, nodes: map[int]*Node{},
		inbox: map[int][]Message{}, committed: map[uint64]uint64{}, maxCommit: map[int]uint64{}}
	peers := []int{0, 1, 2}
	for _, id := range peers {
		pc.ids = append(pc.ids, id)
		pc.nodes[id] = New(Config{ID: id, Peers: peers, Seed: seed}, HardState{Vote: None}, NewLog())
	}
	return pc
}

// round performs one scheduled action plus message shuffling, then checks
// all invariants. Returns an error describing the first violation.
func (pc *propCluster) round() error {
	switch pc.rng.intn(10) {
	case 0, 1, 2: // tick everyone
		for _, id := range pc.ids {
			pc.nodes[id].Tick()
		}
	case 3, 4: // propose on any current leader
		for _, id := range pc.ids {
			if pc.nodes[id].State() == Leader {
				pc.proposals++
				pc.nodes[id].Propose([]byte(fmt.Sprintf("p%d", pc.proposals)))
				break
			}
		}
	case 5: // crash-restart one node from its stable state
		id := pc.ids[pc.rng.intn(len(pc.ids))]
		n := pc.nodes[id]
		pc.nodes[id] = New(n.cfg, n.HardState(), n.Log())
		pc.inbox[id] = nil // volatile: in-flight messages to it are lost
		// The commit index is volatile too: monotonicity holds within an
		// incarnation, so the floor resets across the crash.
		pc.maxCommit[id] = 0
	case 6: // leader compaction
		for _, id := range pc.ids {
			if pc.nodes[id].State() == Leader {
				pc.nodes[id].MaybeCompact(uint64(pc.rng.intn(4)))
				break
			}
		}
	default: // deliver
	}

	// Drain outboxes with seeded loss and duplication.
	for _, id := range pc.ids {
		for _, m := range pc.nodes[id].Messages() {
			r := pc.rng.intn(10)
			if r == 0 {
				continue // drop
			}
			pc.inbox[m.To] = append(pc.inbox[m.To], m)
			if r == 1 {
				pc.inbox[m.To] = append(pc.inbox[m.To], m) // duplicate
			}
		}
	}
	// Deliver a seeded portion of each inbox, sometimes reordering a pair.
	for _, id := range pc.ids {
		q := pc.inbox[id]
		if len(q) == 0 {
			continue
		}
		k := pc.rng.intn(len(q) + 1)
		if k >= 2 && pc.rng.intn(4) == 0 {
			q[k-1], q[k-2] = q[k-2], q[k-1]
		}
		for _, m := range q[:k] {
			pc.nodes[id].Step(m)
		}
		pc.inbox[id] = append([]Message(nil), q[k:]...)
	}
	for _, id := range pc.ids {
		pc.nodes[id].CommittedEntries()
	}
	return pc.check()
}

func (pc *propCluster) check() error {
	for _, id := range pc.ids {
		n := pc.nodes[id]
		lg := n.Log()
		// Commit index never regresses.
		if n.Commit() < pc.maxCommit[id] {
			return fmt.Errorf("node %d commit regressed %d -> %d", id, pc.maxCommit[id], n.Commit())
		}
		pc.maxCommit[id] = n.Commit()
		// Terms monotonic per index.
		prev := uint64(0)
		for i := lg.FirstIndex(); i <= lg.LastIndex(); i++ {
			t, _ := lg.Term(i)
			if t < prev {
				return fmt.Errorf("node %d term not monotonic at index %d: %d < %d", id, i, t, prev)
			}
			prev = t
		}
		// Committed entries are stable: record on first sight, compare after.
		for i := lg.FirstIndex(); i <= n.Commit() && i <= lg.LastIndex(); i++ {
			e, _ := lg.Entry(i)
			h := entryHash(e)
			if want, ok := pc.committed[i]; ok {
				if h != want {
					return fmt.Errorf("node %d rewrote committed entry %d", id, i)
				}
			} else {
				pc.committed[i] = h
			}
		}
	}
	// Log Matching: same term at an index implies identical prefixes.
	for a := 0; a < len(pc.ids); a++ {
		for b := a + 1; b < len(pc.ids); b++ {
			la, lb := pc.nodes[pc.ids[a]].Log(), pc.nodes[pc.ids[b]].Log()
			lo := la.FirstIndex()
			if f := lb.FirstIndex(); f > lo {
				lo = f
			}
			hi := la.LastIndex()
			if l := lb.LastIndex(); l < hi {
				hi = l
			}
			for i := hi; i >= lo && i > 0; i-- {
				ta, _ := la.Term(i)
				tb, _ := lb.Term(i)
				if ta != tb {
					continue
				}
				// Terms match at i: every stored entry at <= i must match.
				for j := lo; j <= i; j++ {
					ea, _ := la.Entry(j)
					eb, _ := lb.Entry(j)
					if entryHash(ea) != entryHash(eb) {
						return fmt.Errorf("log matching violated: nodes %d/%d agree on term at %d but differ at %d",
							pc.ids[a], pc.ids[b], i, j)
					}
				}
				break // lower indices are covered by the inner loop
			}
		}
	}
	return nil
}

func TestPropertyRaftSafety(t *testing.T) {
	f := func(seed uint64) bool {
		pc := newPropCluster(seed)
		for r := 0; r < 400; r++ {
			if err := pc.round(); err != nil {
				t.Logf("seed %d round %d: %v", seed, r, err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLogOps drives the Log type alone through seeded
// append/truncate/compact sequences, checking the boundary bookkeeping.
func TestPropertyLogOps(t *testing.T) {
	f := func(seed uint64) bool {
		rng := &propRng{s: seed}
		lg := NewLog()
		mirror := map[uint64]Entry{} // index -> entry, ground truth
		term := uint64(1)
		compacted := uint64(0)
		for op := 0; op < 300; op++ {
			switch rng.intn(4) {
			case 0, 1: // append a small batch, terms nondecreasing
				if rng.intn(5) == 0 {
					term++
				}
				n := 1 + rng.intn(3)
				for i := 0; i < n; i++ {
					e := Entry{Term: term, Data: []byte{byte(rng.next())}}
					idx := lg.Append(e)
					mirror[idx] = e
				}
			case 2: // truncate a suffix above the boundary
				if lg.Len() == 0 {
					continue
				}
				from := lg.FirstIndex() + uint64(rng.intn(lg.Len()))
				lg.TruncateSuffix(from)
				for i := from; ; i++ {
					if _, ok := mirror[i]; !ok {
						break
					}
					delete(mirror, i)
				}
				if t, _ := lg.Term(lg.LastIndex()); t > 0 {
					term = t
				} else {
					term = lg.boundTerm
					if term == 0 {
						term = 1
					}
				}
			case 3: // compact a prefix
				if lg.Len() == 0 {
					continue
				}
				to := lg.FirstIndex() + uint64(rng.intn(lg.Len()))
				lg.CompactPrefix(to)
				compacted = to
			}
			// Invariants: stored range answers match the mirror; boundary
			// term answers; compaction below boundary is refused.
			if lg.FirstIndex() != compacted+1 && compacted != 0 {
				return false
			}
			for i := lg.FirstIndex(); i <= lg.LastIndex(); i++ {
				e, ok := lg.Entry(i)
				want, okm := mirror[i]
				if !ok || !okm || entryHash(e) != entryHash(want) {
					t.Logf("seed %d op %d: stored entry %d diverged from mirror", seed, op, i)
					return false
				}
			}
			if bt, ok := lg.Term(lg.FirstIndex() - 1); lg.FirstIndex() > 1 && (!ok || bt == 0) {
				t.Logf("seed %d op %d: boundary term lost", seed, op)
				return false
			}
			prev := uint64(0)
			for i := lg.FirstIndex(); i <= lg.LastIndex(); i++ {
				tt, _ := lg.Term(i)
				if tt < prev {
					t.Logf("seed %d op %d: term regression at %d", seed, op, i)
					return false
				}
				prev = tt
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateBelowBoundaryPanics pins the "no committed entry is ever
// truncated" guard: the compaction boundary is committed everywhere by
// construction, so suffix truncation below it must refuse loudly.
func TestTruncateBelowBoundaryPanics(t *testing.T) {
	lg := NewLog()
	lg.Append(Entry{Term: 1}, Entry{Term: 1}, Entry{Term: 2})
	lg.CompactPrefix(2)
	defer func() {
		if recover() == nil {
			t.Fatal("TruncateSuffix below the compaction boundary did not panic")
		}
	}()
	lg.TruncateSuffix(1)
}
