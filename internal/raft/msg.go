package raft

import "fmt"

// MsgType identifies a raft protocol message.
type MsgType uint8

const (
	// MsgVote is a candidate's RequestVote.
	MsgVote MsgType = iota
	// MsgVoteResp answers a MsgVote (Reject = vote not granted).
	MsgVoteResp
	// MsgApp is AppendEntries: replication when Entries is non-empty, a
	// heartbeat when empty.
	MsgApp
	// MsgAppResp answers a MsgApp (Index = match on success, a rewind hint
	// on rejection).
	MsgAppResp

	numMsgTypes
)

var msgNames = [numMsgTypes]string{
	MsgVote:     "MsgVote",
	MsgVoteResp: "MsgVoteResp",
	MsgApp:      "MsgApp",
	MsgAppResp:  "MsgAppResp",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is one raft protocol message. Field meaning by type:
//
//   - MsgVote: Index/LogTerm are the candidate's last log index and term.
//   - MsgVoteResp: Reject reports whether the vote was withheld.
//   - MsgApp: Index/LogTerm are prevLogIndex/prevLogTerm, Commit the
//     leader's commit index, Compact the leader-sanctioned compaction
//     boundary (every replica stores the prefix up to it), Entries the
//     payload (empty for heartbeats).
//   - MsgAppResp: on success Index is the follower's new match index; on
//     rejection it is the follower's last index, a rewind hint for the
//     leader's next probe.
type Message struct {
	Type     MsgType
	From, To int
	Term     uint64
	Index    uint64
	LogTerm  uint64
	Commit   uint64
	Compact  uint64
	Reject   bool
	Entries  []Entry
}

// Heartbeat reports whether m is an empty AppendEntries.
func (m Message) Heartbeat() bool { return m.Type == MsgApp && len(m.Entries) == 0 }

func (m Message) String() string {
	return fmt.Sprintf("%v %d->%d term=%d idx=%d logterm=%d commit=%d rej=%v n=%d",
		m.Type, m.From, m.To, m.Term, m.Index, m.LogTerm, m.Commit, m.Reject, len(m.Entries))
}
