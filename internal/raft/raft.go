// Package raft is a deterministic, message-driven raft consensus core for
// the Aeolia reproduction's replicated block cluster (internal/cluster):
// leader election, log replication, term/commit safety, and snapshot-free
// compaction by truncation (a leader only sanctions discarding prefixes
// every replica already stores, so a lagging follower never needs a
// snapshot transfer).
//
// The core is transport- and clock-free: callers feed it Step(msg) and
// Tick() and drain Messages() / CommittedEntries(). All randomness (the
// per-term election timeout) is a pure function of (seed, id, term), so a
// cluster of nodes driven from a deterministic event loop replays
// byte-identically — the property every golden experiment and the failover
// fault matrix rely on.
package raft

import (
	"fmt"
	"sort"
)

// State is a node's role.
type State uint8

const (
	// Follower nodes accept entries from the leader of their term.
	Follower State = iota
	// Candidate nodes are soliciting votes after an election timeout.
	Candidate
	// Leader nodes accept proposals and replicate them.
	Leader
)

func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return "state?"
}

// None marks an unknown node id (no vote cast, no known leader).
const None = -1

// HardState is the durable per-node state raft requires across crashes.
// The log itself is the third piece of stable storage.
type HardState struct {
	Term uint64
	Vote int
}

// Config parameterizes one node.
type Config struct {
	// ID is this node's id; Peers lists every member id including ID.
	ID    int
	Peers []int
	// ElectionTicks is the base election timeout in ticks (default 10);
	// each term draws a deterministic extra in [0, ElectionTicks) from
	// (Seed, ID, Term). HeartbeatTicks is the leader's heartbeat interval
	// (default 2).
	ElectionTicks  int
	HeartbeatTicks int
	// MaxBatch bounds entries per AppendEntries (default 64).
	MaxBatch int
	// Seed drives the randomized election timeouts.
	Seed uint64
}

func (c Config) electionTicks() int {
	if c.ElectionTicks <= 0 {
		return 10
	}
	return c.ElectionTicks
}

func (c Config) heartbeatTicks() int {
	if c.HeartbeatTicks <= 0 {
		return 2
	}
	return c.HeartbeatTicks
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 64
	}
	return c.MaxBatch
}

// IndexedEntry is a committed entry ready to apply, paired with its index.
type IndexedEntry struct {
	Index uint64
	Entry Entry
}

// Hooks observe the safety-relevant transitions (for tracing). All fields
// are optional; hooks must not call back into the node.
type Hooks struct {
	// OnLeader fires when this node becomes leader of the given term.
	OnLeader func(term uint64)
	// OnAccept fires when an entry is appended (stored durably), including
	// conflict overwrites at a previously accepted index.
	OnAccept func(index, term uint64)
	// OnCommit fires when the commit index advances.
	OnCommit func(index uint64)
}

// Node is one raft participant.
type Node struct {
	cfg   Config
	state State
	term  uint64
	vote  int
	lead  int
	log   *Log

	commit  uint64
	applied uint64

	elapsed int // ticks since last heartbeat (leader) / last reset (others)
	timeout int // this term's randomized election timeout in ticks

	votes       map[int]bool
	next, match map[int]uint64

	msgs  []Message
	hooks Hooks

	// Elections counts campaigns started; Grants counts votes this node
	// granted; Heartbeats counts heartbeat broadcasts sent as leader.
	Elections, Grants, Heartbeats uint64
}

// New builds a node from its durable state. Fresh nodes pass
// HardState{Vote: None} and NewLog(); a restarting node passes whatever it
// persisted — volatile state (commit index, role, peers' progress) is
// rebuilt by the protocol.
func New(cfg Config, hs HardState, log *Log) *Node {
	if log == nil {
		log = NewLog()
	}
	if hs.Vote == 0 && hs.Term == 0 {
		hs.Vote = None
	}
	n := &Node{cfg: cfg, log: log}
	n.becomeFollower(hs.Term, None)
	n.vote = hs.Vote
	// Restarted nodes may only re-apply from the compaction boundary; the
	// boundary prefix is applied state by construction.
	n.applied = log.FirstIndex() - 1
	n.commit = n.applied
	return n
}

// ID returns the node id.
func (n *Node) ID() int { return n.cfg.ID }

// State returns the node's current role.
func (n *Node) State() State { return n.state }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the known leader of the current term (None if unknown).
func (n *Node) Leader() int { return n.lead }

// Commit returns the commit index.
func (n *Node) Commit() uint64 { return n.commit }

// Applied returns the last applied index.
func (n *Node) Applied() uint64 { return n.applied }

// Log exposes the underlying log (stable storage; the cluster node hands it
// back to New on restart).
func (n *Node) Log() *Log { return n.log }

// HardState returns the durable state to persist alongside the log.
func (n *Node) HardState() HardState { return HardState{Term: n.term, Vote: n.vote} }

// SetHooks installs observation hooks (replacing any previous set).
func (n *Node) SetHooks(h Hooks) { n.hooks = h }

func (n *Node) notifyAccept(index, term uint64) {
	if n.hooks.OnAccept != nil {
		n.hooks.OnAccept(index, term)
	}
}

func (n *Node) setCommit(c uint64) {
	if c <= n.commit {
		return
	}
	n.commit = c
	if n.hooks.OnCommit != nil {
		n.hooks.OnCommit(c)
	}
}

// Messages drains the outbox: every message generated since the last drain,
// in generation order.
func (n *Node) Messages() []Message {
	out := n.msgs
	n.msgs = nil
	return out
}

// CommittedEntries returns the entries in (applied, commit] and marks them
// applied. The caller must apply them in order before the next call.
func (n *Node) CommittedEntries() []IndexedEntry {
	if n.applied >= n.commit {
		return nil
	}
	es := n.log.Entries(n.applied+1, n.commit)
	out := make([]IndexedEntry, len(es))
	for i, e := range es {
		out[i] = IndexedEntry{Index: n.applied + 1 + uint64(i), Entry: e}
	}
	n.applied = n.commit
	return out
}

// quorum returns the majority size.
func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) send(m Message) {
	m.From = n.cfg.ID
	m.Term = n.term
	n.msgs = append(n.msgs, m)
}

// resetTimeout draws this term's election timeout: base + uniform in
// [0, base), deterministic in (seed, id, term) so identically seeded runs
// elect identically.
func (n *Node) resetTimeout() {
	base := n.cfg.electionTicks()
	h := splitmix64(n.cfg.Seed ^ uint64(n.cfg.ID)*0x9e3779b97f4a7c15 ^ n.term<<17)
	n.timeout = base + int(h%uint64(base))
	n.elapsed = 0
}

func (n *Node) becomeFollower(term uint64, lead int) {
	if term > n.term {
		n.vote = None
	}
	n.state = Follower
	n.term = term
	n.lead = lead
	n.votes = nil
	n.next, n.match = nil, nil
	n.resetTimeout()
}

func (n *Node) becomeCandidate() {
	n.state = Candidate
	n.term++
	n.vote = n.cfg.ID
	n.lead = None
	n.votes = map[int]bool{n.cfg.ID: true}
	n.resetTimeout()
	n.Elections++
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.lead = n.cfg.ID
	n.elapsed = 0
	n.next = make(map[int]uint64, len(n.cfg.Peers))
	n.match = make(map[int]uint64, len(n.cfg.Peers))
	last := n.log.LastIndex()
	for _, p := range n.cfg.Peers {
		n.next[p] = last + 1
		n.match[p] = 0
	}
	// The no-op: a leader may only count replicas of its own term toward
	// commit, so it commits one immediately to unblock older entries.
	n.log.Append(Entry{Term: n.term})
	n.match[n.cfg.ID] = n.log.LastIndex()
	if n.hooks.OnLeader != nil {
		n.hooks.OnLeader(n.term)
	}
	n.notifyAccept(n.log.LastIndex(), n.term)
	n.maybeCommit()
	n.bcastAppend()
}

// Tick advances the node's logical clock by one tick. Leaders heartbeat;
// others campaign when the election timeout expires.
func (n *Node) Tick() {
	n.elapsed++
	if n.state == Leader {
		if n.elapsed >= n.cfg.heartbeatTicks() {
			n.elapsed = 0
			n.Heartbeats++
			n.bcastAppend()
		}
		return
	}
	if n.elapsed >= n.timeout {
		n.campaign()
	}
}

func (n *Node) campaign() {
	n.becomeCandidate()
	if n.quorum() == 1 {
		n.becomeLeader()
		return
	}
	last := n.log.LastIndex()
	lastTerm, _ := n.log.Term(last)
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		n.send(Message{Type: MsgVote, To: p, Index: last, LogTerm: lastTerm})
	}
}

// Propose appends data to the log if this node is the leader, returning the
// entry's (index, term). ok is false on non-leaders.
func (n *Node) Propose(data []byte) (index, term uint64, ok bool) {
	if n.state != Leader {
		return 0, 0, false
	}
	idx := n.log.Append(Entry{Term: n.term, Data: data})
	n.match[n.cfg.ID] = idx
	n.notifyAccept(idx, n.term)
	n.maybeCommit()
	n.bcastAppend()
	return idx, n.term, true
}

// Step feeds one message into the state machine.
func (n *Node) Step(m Message) {
	if m.Term > n.term {
		lead := None
		if m.Type == MsgApp {
			lead = m.From
		}
		n.becomeFollower(m.Term, lead)
	}
	if m.Term < n.term {
		switch m.Type {
		case MsgVote:
			n.send(Message{Type: MsgVoteResp, To: m.From, Reject: true})
		case MsgApp:
			// Tell a stale leader about the newer term.
			n.send(Message{Type: MsgAppResp, To: m.From, Reject: true, Index: n.log.LastIndex()})
		}
		return
	}
	switch m.Type {
	case MsgVote:
		n.handleVote(m)
	case MsgVoteResp:
		if n.state != Candidate {
			return
		}
		n.votes[m.From] = !m.Reject
		granted := 0
		for _, g := range n.votes {
			if g {
				granted++
			}
		}
		if granted >= n.quorum() {
			n.becomeLeader()
		}
	case MsgApp:
		if n.state != Follower {
			// Same-term candidate (or impossible same-term leader): a
			// legitimate leader exists, step down.
			n.becomeFollower(m.Term, m.From)
		}
		n.lead = m.From
		n.elapsed = 0
		n.handleAppend(m)
	case MsgAppResp:
		if n.state != Leader {
			return
		}
		n.handleAppendResp(m)
	}
}

func (n *Node) handleVote(m Message) {
	last := n.log.LastIndex()
	lastTerm, _ := n.log.Term(last)
	upToDate := m.LogTerm > lastTerm || (m.LogTerm == lastTerm && m.Index >= last)
	canVote := n.vote == None || n.vote == m.From
	if canVote && upToDate && n.lead == None {
		n.vote = m.From
		n.elapsed = 0
		n.Grants++
		n.send(Message{Type: MsgVoteResp, To: m.From})
		return
	}
	n.send(Message{Type: MsgVoteResp, To: m.From, Reject: true})
}

func (n *Node) handleAppend(m Message) {
	// Consistency check at prevIndex.
	if m.Index < n.log.FirstIndex()-1 {
		// The prev point is inside our compacted prefix: everything there
		// is committed and identical by construction; answer with our
		// boundary so the leader fast-forwards.
		n.send(Message{Type: MsgAppResp, To: m.From, Index: n.log.FirstIndex() - 1})
		return
	}
	t, ok := n.log.Term(m.Index)
	if !ok || t != m.LogTerm {
		hint := n.log.LastIndex()
		if m.Index < hint {
			hint = m.Index
		}
		if hint > 0 {
			hint--
		}
		n.send(Message{Type: MsgAppResp, To: m.From, Reject: true, Index: hint})
		return
	}
	// Scan for the first conflict; truncate and append the rest.
	lastNew := m.Index + uint64(len(m.Entries))
	for i, e := range m.Entries {
		idx := m.Index + 1 + uint64(i)
		if et, ok := n.log.Term(idx); ok {
			if et == e.Term {
				continue
			}
			if idx <= n.commit {
				panic(fmt.Sprintf("raft: node %d: conflict at committed index %d (term %d vs %d)",
					n.cfg.ID, idx, et, e.Term))
			}
			n.log.TruncateSuffix(idx)
		}
		n.log.Append(m.Entries[i:]...)
		for j := i; j < len(m.Entries); j++ {
			n.notifyAccept(m.Index+1+uint64(j), m.Entries[j].Term)
		}
		break
	}
	if c := m.Commit; c > n.commit {
		if lastNew < c {
			c = lastNew
		}
		n.setCommit(c)
	}
	if m.Compact > 0 {
		// The leader sanctions compaction only up to the index every
		// replica stores; we additionally wait until we applied it.
		c := m.Compact
		if c > n.applied {
			c = n.applied
		}
		n.log.CompactPrefix(c)
	}
	n.send(Message{Type: MsgAppResp, To: m.From, Index: lastNew})
}

func (n *Node) handleAppendResp(m Message) {
	if m.Reject {
		nx := n.next[m.From]
		if m.Index+1 < nx {
			nx = m.Index + 1
		} else if nx > 1 {
			nx--
		}
		if first := n.log.FirstIndex(); nx < first {
			nx = first
		}
		n.next[m.From] = nx
		n.sendAppend(m.From)
		return
	}
	if m.Index > n.match[m.From] {
		n.match[m.From] = m.Index
	}
	if m.Index+1 > n.next[m.From] {
		n.next[m.From] = m.Index + 1
	}
	before := n.commit
	n.maybeCommit()
	if n.commit > before {
		// Propagate the advanced commit index right away instead of waiting
		// for the next heartbeat; caught-up followers get an empty MsgApp.
		n.bcastAppend()
		return
	}
	// Keep streaming if the follower is still behind.
	if n.next[m.From] <= n.log.LastIndex() {
		n.sendAppend(m.From)
	}
}

// maybeCommit advances the commit index to the highest index replicated on
// a quorum whose entry is from the current term.
func (n *Node) maybeCommit() {
	ms := make([]uint64, 0, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		ms = append(ms, n.match[p])
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] > ms[j] })
	mid := ms[n.quorum()-1]
	if mid <= n.commit {
		return
	}
	if t, ok := n.log.Term(mid); ok && t == n.term {
		n.setCommit(mid)
	}
}

// compactTo returns the leader-sanctioned compaction boundary: the highest
// index every replica has acknowledged and this node has applied.
func (n *Node) compactTo() uint64 {
	if n.state != Leader {
		return 0
	}
	min := n.applied
	for _, p := range n.cfg.Peers {
		if n.match[p] < min {
			min = n.match[p]
		}
	}
	return min
}

// MaybeCompact truncates the leader's applied, fully replicated prefix,
// keeping keepTail entries of history for straggler probes. It returns the
// new boundary (0 when nothing was compacted). Followers compact when the
// boundary arrives on subsequent MsgApps.
func (n *Node) MaybeCompact(keepTail uint64) uint64 {
	to := n.compactTo()
	if to <= keepTail {
		return 0
	}
	to -= keepTail
	if to < n.log.FirstIndex() {
		return 0
	}
	n.log.CompactPrefix(to)
	return to
}

func (n *Node) bcastAppend() {
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to int) {
	nx := n.next[to]
	if first := n.log.FirstIndex(); nx < first {
		// The prefix below first is compacted; by the compaction contract
		// the follower already stores it.
		nx = first
		n.next[to] = nx
	}
	prev := nx - 1
	prevTerm, ok := n.log.Term(prev)
	if !ok {
		panic(fmt.Sprintf("raft: node %d: no term for prev index %d (first %d last %d)",
			n.cfg.ID, prev, n.log.FirstIndex(), n.log.LastIndex()))
	}
	hi := nx + uint64(n.cfg.maxBatch()) - 1
	es := n.log.Entries(nx, hi)
	n.send(Message{
		Type: MsgApp, To: to, Index: prev, LogTerm: prevTerm,
		Commit: n.commit, Compact: n.log.FirstIndex() - 1, Entries: es,
	})
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
