package raft

import (
	"fmt"
	"testing"
)

// harness is a deterministic in-memory cluster: per-link FIFO queues, no
// loss unless a test drops explicitly.
type harness struct {
	t     *testing.T
	nodes map[int]*Node
	ids   []int
	// queues[src][dst] in FIFO order.
	queues map[int]map[int][]Message
	// down nodes neither send nor receive.
	down map[int]bool
	// applied log per node (data of applied entries, in order).
	applied map[int][]string
}

func newHarness(t *testing.T, n int) *harness {
	h := &harness{t: t, nodes: map[int]*Node{}, queues: map[int]map[int][]Message{},
		down: map[int]bool{}, applied: map[int][]string{}}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < n; i++ {
		h.ids = append(h.ids, i)
		h.nodes[i] = New(Config{ID: i, Peers: peers, Seed: 99}, HardState{Vote: None}, NewLog())
		h.queues[i] = map[int][]Message{}
	}
	return h
}

// pump drains outboxes into queues and delivers everything until quiet.
func (h *harness) pump() {
	for rounds := 0; rounds < 10000; rounds++ {
		moved := false
		for _, id := range h.ids {
			if h.down[id] {
				h.nodes[id].Messages() // drop a down node's output
				continue
			}
			for _, m := range h.nodes[id].Messages() {
				h.queues[id][m.To] = append(h.queues[id][m.To], m)
				moved = true
			}
		}
		for _, src := range h.ids {
			for _, dst := range h.ids {
				q := h.queues[src][dst]
				if len(q) == 0 {
					continue
				}
				h.queues[src][dst] = nil
				if h.down[src] || h.down[dst] {
					continue
				}
				for _, m := range q {
					h.nodes[dst].Step(m)
				}
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	for _, id := range h.ids {
		for _, ie := range h.nodes[id].CommittedEntries() {
			h.applied[id] = append(h.applied[id], string(ie.Entry.Data))
		}
	}
}

// tickAll ticks every live node once and pumps.
func (h *harness) tickAll() {
	for _, id := range h.ids {
		if !h.down[id] {
			h.nodes[id].Tick()
		}
	}
	h.pump()
}

// electLeader ticks until exactly one live leader exists, returning it.
func (h *harness) electLeader() *Node {
	for i := 0; i < 2000; i++ {
		h.tickAll()
		var lead *Node
		leaders := 0
		for _, id := range h.ids {
			if !h.down[id] && h.nodes[id].State() == Leader {
				leaders++
				lead = h.nodes[id]
			}
		}
		if leaders == 1 {
			return lead
		}
	}
	h.t.Fatal("no single leader elected within 2000 ticks")
	return nil
}

func TestSingleNodeCommits(t *testing.T) {
	h := newHarness(t, 1)
	lead := h.electLeader()
	idx, term, ok := lead.Propose([]byte("a"))
	if !ok {
		t.Fatal("single-node leader refused proposal")
	}
	if term != lead.Term() {
		t.Fatalf("proposal term %d != node term %d", term, lead.Term())
	}
	h.pump()
	if lead.Commit() < idx {
		t.Fatalf("commit %d below proposed index %d", lead.Commit(), idx)
	}
	if got := h.applied[0]; len(got) == 0 || got[len(got)-1] != "a" {
		t.Fatalf("applied %q, want trailing \"a\"", got)
	}
}

func TestThreeNodeReplication(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.electLeader()
	for i := 0; i < 5; i++ {
		if _, _, ok := lead.Propose([]byte(fmt.Sprintf("e%d", i))); !ok {
			t.Fatal("leader refused proposal")
		}
		h.pump()
	}
	want := fmt.Sprint(h.applied[lead.ID()])
	for _, id := range h.ids {
		if h.nodes[id].Commit() != lead.Commit() {
			t.Fatalf("node %d commit %d != leader commit %d", id, h.nodes[id].Commit(), lead.Commit())
		}
		if got := fmt.Sprint(h.applied[id]); got != want {
			t.Fatalf("node %d applied %s, leader applied %s", id, got, want)
		}
	}
}

func TestLeaderFailoverPreservesCommitted(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.electLeader()
	idx, _, _ := lead.Propose([]byte("durable"))
	h.pump()
	if lead.Commit() < idx {
		t.Fatalf("entry %d not committed before failover", idx)
	}
	h.down[lead.ID()] = true
	next := h.electLeader()
	if next.ID() == lead.ID() {
		t.Fatal("down leader re-elected")
	}
	if next.Term() <= lead.Term() {
		t.Fatalf("new leader term %d not above old term %d", next.Term(), lead.Term())
	}
	// The committed entry must survive on the new leader.
	e, ok := next.Log().Entry(idx)
	if !ok || string(e.Data) != "durable" {
		t.Fatalf("committed entry lost after failover: %v %q", ok, e.Data)
	}
	// And new proposals still commit with one node down.
	idx2, _, ok := next.Propose([]byte("after"))
	if !ok {
		t.Fatal("new leader refused proposal")
	}
	h.pump()
	if next.Commit() < idx2 {
		t.Fatalf("post-failover entry %d not committed (commit %d)", idx2, next.Commit())
	}
}

func TestStaleLeaderStepsDown(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.electLeader()
	h.down[lead.ID()] = true
	next := h.electLeader()
	// Heal: the old leader hears the new term through its own heartbeat's
	// rejection (or the new leader's append).
	h.down[lead.ID()] = false
	for i := 0; i < 200 && lead.State() == Leader; i++ {
		h.tickAll()
	}
	if lead.State() == Leader {
		t.Fatal("stale leader did not step down after heal")
	}
	if lead.Term() < next.Term() {
		t.Fatalf("old leader term %d below cluster term %d", lead.Term(), next.Term())
	}
}

func TestRestartRejoinsFromStableState(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.electLeader()
	lead.Propose([]byte("x"))
	h.pump()
	victim := (lead.ID() + 1) % 3
	// Crash: preserve hard state + log (stable storage), rebuild node.
	hs, lg := h.nodes[victim].HardState(), h.nodes[victim].Log()
	h.nodes[victim] = New(h.nodes[victim].cfg, hs, lg)
	h.applied[victim] = nil
	h.pump()
	idx2, _, ok := lead.Propose([]byte("y"))
	if !ok {
		t.Fatal("leader lost leadership over a follower restart")
	}
	h.pump()
	if h.nodes[victim].Commit() < idx2 {
		t.Fatalf("restarted follower commit %d below %d", h.nodes[victim].Commit(), idx2)
	}
	got := h.applied[victim]
	if len(got) == 0 || got[len(got)-1] != "y" {
		t.Fatalf("restarted follower applied %q, want trailing \"y\"", got)
	}
}

func TestCompactionKeepsClusterLive(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.electLeader()
	for i := 0; i < 20; i++ {
		lead.Propose([]byte(fmt.Sprintf("c%d", i)))
		h.pump()
	}
	if to := lead.MaybeCompact(2); to == 0 {
		t.Fatal("leader did not compact a fully replicated prefix")
	}
	if lead.Log().FirstIndex() <= 1 {
		t.Fatal("compaction did not advance the log offset")
	}
	// Followers compact when the boundary arrives with the next appends.
	lead.Propose([]byte("post-compact"))
	h.pump()
	h.tickAll()
	for _, id := range h.ids {
		n := h.nodes[id]
		if n.Log().FirstIndex() == 1 {
			t.Fatalf("node %d never compacted (first index 1)", id)
		}
		if got := h.applied[id][len(h.applied[id])-1]; got != "post-compact" {
			t.Fatalf("node %d applied %q after compaction, want post-compact", id, got)
		}
	}
}

func TestProposeOnFollowerRefused(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.electLeader()
	for _, id := range h.ids {
		if id == lead.ID() {
			continue
		}
		if _, _, ok := h.nodes[id].Propose([]byte("nope")); ok {
			t.Fatalf("follower %d accepted a proposal", id)
		}
	}
}
