// Package report renders benchmark results as aligned text tables (for
// cmd/aeobench), markdown (for EXPERIMENTS.md), and JSON (for CI bench
// artifacts).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one figure/table's regenerated data.
type Table struct {
	ID      string // experiment id, e.g. "fig2"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row, formatting each value with fmtOne.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmtOne(c)
	}
	t.Rows = append(t.Rows, row)
}

func fmtOne(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		switch {
		case x == 0:
			return "0"
		case x >= 1000:
			return fmt.Sprintf("%.0f", x)
		case x >= 10:
			return fmt.Sprintf("%.1f", x)
		default:
			return fmt.Sprintf("%.2f", x)
		}
	default:
		return fmt.Sprint(v)
	}
}

// Note records a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print writes an aligned text rendering.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes a GitHub-flavored markdown rendering.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

// JSON writes a machine-readable rendering (one object per table). CI's
// bench-smoke job archives this as the BENCH_* trajectory artifact, so the
// field names are part of that contract.
func WriteJSON(w io.Writer, tables []*Table) error {
	type jsonTable struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}
	out := make([]jsonTable, len(tables))
	for i, t := range tables {
		out[i] = jsonTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}
