package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID: "fig0", Title: "sample",
		Columns: []string{"name", "value"},
	}
	t.AddRow("alpha", "1")
	t.AddRowf("beta", 3.14159, 12345.6)
	t.Note("a note with %d args", 1)
	return t
}

func TestPrintAligned(t *testing.T) {
	var sb strings.Builder
	sample().Print(&sb)
	out := sb.String()
	for _, want := range []string{"== fig0: sample ==", "alpha", "beta", "3.14", "note: a note with 1 args"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdown(t *testing.T) {
	var sb strings.Builder
	sample().Markdown(&sb)
	out := sb.String()
	for _, want := range []string{"### fig0 — sample", "| name | value |", "| --- | --- |", "| alpha | 1 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFmtOne(t *testing.T) {
	cases := map[string]any{
		"0":    0.0,
		"1235": 1234.9,
		"12.3": 12.34,
		"1.23": 1.234,
		"s":    "s",
		"7":    7,
	}
	for want, in := range cases {
		if got := fmtOne(in); got != want {
			t.Errorf("fmtOne(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteJSONRoundTrip: the JSON export must decode back into the same
// id/title/columns/rows/notes, so downstream tooling (CI artifacts, the
// aeobench -json consumer) can rely on the shape.
func TestWriteJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	tables := []*Table{sample(), {ID: "empty", Title: "no rows", Columns: []string{"c"}}}
	if err := WriteJSON(&sb, tables); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("round-tripped %d tables, want 2", len(got))
	}
	if got[0].ID != "fig0" || got[0].Title != "sample" {
		t.Errorf("table 0 header = %q/%q", got[0].ID, got[0].Title)
	}
	if len(got[0].Rows) != 2 || got[0].Rows[0][0] != "alpha" || got[0].Rows[1][1] != "3.14" {
		t.Errorf("table 0 rows diverged: %v", got[0].Rows)
	}
	if len(got[0].Notes) != 1 || got[0].Notes[0] != "a note with 1 args" {
		t.Errorf("table 0 notes diverged: %v", got[0].Notes)
	}
	if got[1].ID != "empty" || len(got[1].Rows) != 0 || len(got[1].Notes) != 0 {
		t.Errorf("empty table diverged: %+v", got[1])
	}
}
