package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID: "fig0", Title: "sample",
		Columns: []string{"name", "value"},
	}
	t.AddRow("alpha", "1")
	t.AddRowf("beta", 3.14159, 12345.6)
	t.Note("a note with %d args", 1)
	return t
}

func TestPrintAligned(t *testing.T) {
	var sb strings.Builder
	sample().Print(&sb)
	out := sb.String()
	for _, want := range []string{"== fig0: sample ==", "alpha", "beta", "3.14", "note: a note with 1 args"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdown(t *testing.T) {
	var sb strings.Builder
	sample().Markdown(&sb)
	out := sb.String()
	for _, want := range []string{"### fig0 — sample", "| name | value |", "| --- | --- |", "| alpha | 1 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFmtOne(t *testing.T) {
	cases := map[string]any{
		"0":    0.0,
		"1235": 1234.9,
		"12.3": 12.34,
		"1.23": 1.234,
		"s":    "s",
		"7":    7,
	}
	for want, in := range cases {
		if got := fmtOne(in); got != want {
			t.Errorf("fmtOne(%v) = %q, want %q", in, got, want)
		}
	}
}
