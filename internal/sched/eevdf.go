// Package sched implements the thread-scheduling side of the Aeolia
// reproduction: an EEVDF (Earliest Eligible Virtual Deadline First) policy —
// the Linux 6.12 default that the paper reimplements on sched_ext — plus the
// sched_ext-style shared state map that Aeolia's trusted entities read to
// decide whether to yield (Figure 8).
package sched

import (
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/timing"
)

// NiceZeroWeight is the load weight of a nice-0 task, matching Linux's
// sched_prio_to_weight[20].
const NiceZeroWeight = 1024

// entity is the EEVDF per-task state, the analogue of sched_entity.
type entity struct {
	task      *sim.Task
	weight    int64
	vruntime  time.Duration // weighted virtual runtime
	deadline  time.Duration // virtual deadline = vruntime + slice/weight
	slice     time.Duration
	execStart time.Duration // when the current on-CPU stint began
	onRQ      bool
	// slept marks that the entity blocked (vs. being preempted), which
	// earns the sleeper placement bonus on wakeup.
	slept bool
}

func (e *entity) calcDelta(d time.Duration) time.Duration {
	return time.Duration(int64(d) * NiceZeroWeight / e.weight)
}

type runqueue struct {
	core  *sim.Core
	queue []*entity
	curr  *entity
	// minVruntime tracks the smallest vruntime seen, used to place newly
	// woken tasks so they neither starve nor steal unbounded credit.
	minVruntime time.Duration
}

// EEVDF is the earliest-eligible-virtual-deadline-first scheduler. It
// satisfies sim.Scheduler with per-core runqueues (tasks are core-pinned in
// this simulation, as in the paper's experiments).
type EEVDF struct {
	eng *sim.Engine
	rqs []*runqueue

	// Slice is the base time slice granted per scheduling period.
	Slice time.Duration
}

// NewEEVDF returns an EEVDF scheduler with the default slice.
func NewEEVDF() *EEVDF {
	return &EEVDF{Slice: timing.TimeSlice}
}

// Bind implements sim.Scheduler.
func (s *EEVDF) Bind(e *sim.Engine) {
	s.eng = e
	s.rqs = make([]*runqueue, len(e.Cores()))
	for i := range s.rqs {
		s.rqs[i] = &runqueue{core: e.Core(i)}
	}
}

func (s *EEVDF) rq(c *sim.Core) *runqueue { return s.rqs[c.ID] }

func (s *EEVDF) ent(t *sim.Task) *entity {
	if e, ok := t.Sched.(*entity); ok {
		return e
	}
	e := &entity{task: t, weight: NiceZeroWeight, slice: s.Slice}
	t.Sched = e
	return e
}

// SetWeight adjusts a task's load weight (before or between runs).
func (s *EEVDF) SetWeight(t *sim.Task, w int64) {
	if w <= 0 {
		panic("sched: non-positive weight")
	}
	s.ent(t).weight = w
}

// Enqueue implements sim.Scheduler.
func (s *EEVDF) Enqueue(t *sim.Task) {
	rq := s.rq(t.Affinity())
	e := s.ent(t)
	if e.onRQ {
		panic("sched: double enqueue")
	}
	// Wakeup placement: a task that genuinely slept is placed one slice
	// behind the queue floor (the CFS/EEVDF sleeper bonus), so an
	// I/O-bound task wakes with an earlier virtual deadline than a
	// CPU hog mid-slice and preempts it promptly. A preempted task just
	// keeps its vruntime, floored at minVruntime so nothing hoards
	// credit.
	floor := rq.minVruntime
	if e.slept {
		// Half a slice of lag, as CFS's sched_latency placement gave
		// interactive tasks: enough to preempt a mid-slice hog,
		// bounded so waves of I/O wakeups cannot starve it.
		bonus := e.calcDelta(e.slice) / 2
		if floor > bonus {
			floor -= bonus
		} else {
			floor = 0
		}
		e.slept = false
	}
	if e.vruntime < floor {
		e.vruntime = floor
	}
	e.deadline = e.vruntime + e.calcDelta(e.slice)
	e.onRQ = true
	rq.queue = append(rq.queue, e)
}

// dequeue removes e from rq.queue.
func (rq *runqueue) dequeue(e *entity) {
	for i, q := range rq.queue {
		if q == e {
			rq.queue = append(rq.queue[:i], rq.queue[i+1:]...)
			e.onRQ = false
			return
		}
	}
	panic("sched: dequeue of task not on runqueue")
}

// avgVruntime returns the weighted average vruntime across queued entities
// and the current one — the eligibility threshold of EEVDF.
func (rq *runqueue) avgVruntime() (time.Duration, bool) {
	var sum, weight int64
	consider := func(e *entity) {
		sum += int64(e.vruntime) * e.weight
		weight += e.weight
	}
	for _, e := range rq.queue {
		consider(e)
	}
	if rq.curr != nil {
		consider(rq.curr)
	}
	if weight == 0 {
		return 0, false
	}
	return time.Duration(sum / weight), true
}

// pick returns the earliest eligible virtual deadline entity, falling back
// to the earliest deadline overall when nothing is eligible.
func (rq *runqueue) pick() *entity {
	if len(rq.queue) == 0 {
		return nil
	}
	avg, _ := rq.avgVruntime()
	var best, bestAny *entity
	for _, e := range rq.queue {
		if bestAny == nil || e.deadline < bestAny.deadline {
			bestAny = e
		}
		if e.vruntime <= avg {
			if best == nil || e.deadline < best.deadline {
				best = e
			}
		}
	}
	if best == nil {
		best = bestAny
	}
	return best
}

// PickNext implements sim.Scheduler.
func (s *EEVDF) PickNext(c *sim.Core) *sim.Task {
	rq := s.rq(c)
	e := rq.pick()
	if e == nil {
		return nil
	}
	rq.dequeue(e)
	return e.task
}

// NrRunnable implements sim.Scheduler.
func (s *EEVDF) NrRunnable(c *sim.Core) int { return len(s.rq(c).queue) }

// updateCurr folds the running entity's elapsed CPU time into its vruntime
// and advances its deadline when the slice is consumed.
func (s *EEVDF) updateCurr(rq *runqueue) {
	e := rq.curr
	if e == nil {
		return
	}
	now := rq.core.Now()
	delta := now - e.execStart
	if delta <= 0 {
		return
	}
	e.execStart = now
	e.vruntime += e.calcDelta(delta)
	if e.vruntime > rq.minVruntime {
		rq.minVruntime = e.vruntime
	}
	for e.vruntime >= e.deadline {
		e.deadline += e.calcDelta(e.slice)
	}
}

// OnRun implements sim.Scheduler.
func (s *EEVDF) OnRun(t *sim.Task) {
	rq := s.rq(t.Affinity())
	e := s.ent(t)
	e.execStart = rq.core.Now()
	rq.curr = e
}

// OnStop implements sim.Scheduler.
func (s *EEVDF) OnStop(t *sim.Task, requeue bool) {
	rq := s.rq(t.Affinity())
	e := s.ent(t)
	if rq.curr == e {
		s.updateCurr(rq)
		rq.curr = nil
	}
	if !requeue {
		e.slept = true
	}
}

// ShouldPreempt implements sim.Scheduler: wakeup preemption following
// EEVDF's rule — preempt when the woken task's virtual deadline is earlier
// than the running task's.
func (s *EEVDF) ShouldPreempt(t *sim.Task, c *sim.Core) bool {
	rq := s.rq(c)
	if rq.curr == nil {
		return true
	}
	s.updateCurr(rq)
	return s.ent(t).deadline < rq.curr.deadline
}

// Tick implements sim.Scheduler: the periodic tick updates the running
// entity and requests rescheduling when its deadline is no longer the
// earliest among eligible competitors.
func (s *EEVDF) Tick(c *sim.Core) {
	rq := s.rq(c)
	if rq.curr == nil || len(rq.queue) == 0 {
		return
	}
	s.updateCurr(rq)
	if best := rq.pick(); best != nil && best.deadline < rq.curr.deadline {
		c.SetNeedResched()
	}
}
