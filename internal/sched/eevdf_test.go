package sched_test

import (
	"testing"
	"time"

	"aeolia/internal/sched"
	"aeolia/internal/sim"
)

func newEng(t *testing.T, cores int) (*sim.Engine, *sched.EEVDF) {
	t.Helper()
	s := sched.NewEEVDF()
	e := sim.NewEngine(cores, s)
	t.Cleanup(e.Shutdown)
	return e, s
}

func TestWeightedSharing(t *testing.T) {
	e, s := newEng(t, 1)
	horizon := 300 * time.Millisecond
	heavy := e.Spawn("heavy", e.Core(0), func(env *sim.Env) {
		for env.Now() < horizon {
			env.Exec(time.Millisecond)
		}
	})
	light := e.Spawn("light", e.Core(0), func(env *sim.Env) {
		for env.Now() < horizon {
			env.Exec(time.Millisecond)
		}
	})
	s.SetWeight(heavy, 3*sched.NiceZeroWeight)
	e.Run(horizon + 10*time.Millisecond)
	ratio := float64(heavy.CPUTime) / float64(light.CPUTime)
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("CPU ratio = %.2f (heavy %v, light %v), want ~3", ratio, heavy.CPUTime, light.CPUTime)
	}
}

func TestSleeperGetsPromptService(t *testing.T) {
	e, _ := newEng(t, 1)
	horizon := 100 * time.Millisecond
	e.Spawn("hog", e.Core(0), func(env *sim.Env) {
		for env.Now() < horizon {
			env.Exec(time.Millisecond)
		}
	})
	var worst time.Duration
	e.Spawn("interactive", e.Core(0), func(env *sim.Env) {
		for env.Now() < horizon {
			env.Sleep(500 * time.Microsecond)
			start := env.Now()
			env.Exec(10 * time.Microsecond)
			if lat := env.Now() - start; lat > worst {
				worst = lat
			}
		}
	})
	e.Run(horizon + 10*time.Millisecond)
	// With the sleeper bonus, the interactive task's service latency must
	// stay far below a full slice.
	if worst > time.Millisecond {
		t.Fatalf("interactive worst service = %v, want < 1ms", worst)
	}
}

func TestNrRunnableAndSnapshot(t *testing.T) {
	e, s := newEng(t, 1)
	done := make(chan struct{})
	e.Spawn("a", e.Core(0), func(env *sim.Env) {
		env.Exec(10 * time.Millisecond)
	})
	e.Spawn("b", e.Core(0), func(env *sim.Env) {
		env.Exec(10 * time.Millisecond)
	})
	e.Spawn("probe", e.Core(0), func(env *sim.Env) {
		env.Exec(time.Millisecond)
		snap := s.Ext().Snapshot(e.Core(0))
		if snap.NrRunning < 2 {
			t.Errorf("NrRunning = %d, want >= 2", snap.NrRunning)
		}
		if !snap.HasCandidate {
			t.Error("no candidate with queued tasks")
		}
		close(done)
	})
	e.Run(0)
	select {
	case <-done:
	default:
		t.Fatal("probe did not run")
	}
}

func TestUserTryYieldPrefersEarlierDeadline(t *testing.T) {
	// Current has run 5ms into a 3ms slice; candidate deadline is earlier
	// -> yield.
	snap := sched.Snapshot{
		NrRunning:     2,
		CurrVruntime:  0,
		CurrDeadline:  3 * time.Millisecond,
		CurrExecStart: 0,
		CurrWeight:    sched.NiceZeroWeight,
		CurrSlice:     3 * time.Millisecond,
		CandDeadline:  4 * time.Millisecond,
		HasCandidate:  true,
	}
	if !sched.UserTryYield(snap, 5*time.Millisecond) {
		t.Fatal("should yield: exec time pushed our deadline past the candidate's")
	}
	// Current just started: keep running.
	if sched.UserTryYield(snap, 100*time.Microsecond) {
		t.Fatal("should not yield right after going on-CPU")
	}
}
