package sched

import (
	"time"

	"aeolia/internal/sim"
)

// Snapshot is the read-only scheduling state Aeolia's trusted entities see
// through the mmap'ed eBPF map of the sched_ext policy (§3.3, §6.2). It
// mirrors the fields Figure 8's user_try_yield consults: the number of
// runnable tasks, the current entity's EEVDF state, and the best queued
// candidate's deadline.
type Snapshot struct {
	NrRunning     int // runnable tasks including the current one
	CurrVruntime  time.Duration
	CurrDeadline  time.Duration
	CurrExecStart time.Duration
	CurrWeight    int64
	CurrSlice     time.Duration
	CandDeadline  time.Duration
	HasCandidate  bool
}

// ExtMap is the userspace view over the EEVDF scheduler's state, the
// analogue of the mmap'ed eBPF maps. Reads are instantaneous in virtual
// time (a real mmap read costs nanoseconds; the trusted-entry toll is
// charged separately by the caller).
type ExtMap struct {
	s *EEVDF
}

// Ext returns the sched_ext map view of s.
func (s *EEVDF) Ext() *ExtMap { return &ExtMap{s: s} }

// Snapshot reads the scheduling state of core c.
func (m *ExtMap) Snapshot(c *sim.Core) Snapshot {
	rq := m.s.rq(c)
	snap := Snapshot{NrRunning: len(rq.queue)}
	if rq.curr != nil {
		snap.NrRunning++
		snap.CurrVruntime = rq.curr.vruntime
		snap.CurrDeadline = rq.curr.deadline
		snap.CurrExecStart = rq.curr.execStart
		snap.CurrWeight = rq.curr.weight
		snap.CurrSlice = rq.curr.slice
	}
	// The candidate is what EEVDF would pick next; expose its deadline.
	if best := rq.pick(); best != nil {
		snap.CandDeadline = best.deadline
		snap.HasCandidate = true
	}
	return snap
}

// UserTryYield is Figure 8's policy, evaluated in userspace against the
// exposed state: if other tasks are runnable, simulate update_curr on the
// current entity and yield iff EEVDF would now prefer the candidate. It
// returns true when the caller should sched_yield().
func UserTryYield(snap Snapshot, now time.Duration) bool {
	if snap.NrRunning <= 1 {
		return false // nothing else to run; keep the core (active checking)
	}
	if !snap.HasCandidate {
		return false
	}
	// mock_update_curr: advance the current entity's vruntime/deadline by
	// its execution time since it went on-CPU, without touching kernel
	// state.
	exec := now - snap.CurrExecStart
	if exec < 0 {
		exec = 0
	}
	weight := snap.CurrWeight
	if weight <= 0 {
		weight = NiceZeroWeight
	}
	vruntime := snap.CurrVruntime + time.Duration(int64(exec)*NiceZeroWeight/weight)
	deadline := snap.CurrDeadline
	for vruntime >= deadline {
		deadline += time.Duration(int64(snap.CurrSlice) * NiceZeroWeight / weight)
	}
	// need_resched: the candidate's virtual deadline beats ours.
	return snap.CandDeadline < deadline
}
