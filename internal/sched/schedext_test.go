package sched

import (
	"testing"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/timing"
)

// TestUserTryYieldPolicyTable pins Figure 8's decision logic against
// hand-built snapshots.
func TestUserTryYieldPolicyTable(t *testing.T) {
	slice := timing.TimeSlice
	base := Snapshot{
		NrRunning:     2,
		CurrVruntime:  10 * time.Millisecond,
		CurrDeadline:  10*time.Millisecond + slice,
		CurrExecStart: 100 * time.Millisecond,
		CurrWeight:    NiceZeroWeight,
		CurrSlice:     slice,
		CandDeadline:  10*time.Millisecond + slice/2,
		HasCandidate:  true,
	}
	now := base.CurrExecStart // zero execution so far

	solo := base
	solo.NrRunning = 1
	if UserTryYield(solo, now) {
		t.Error("yielded with nothing else runnable (active checking must keep the core)")
	}
	noCand := base
	noCand.HasCandidate = false
	if UserTryYield(noCand, now) {
		t.Error("yielded without a queued candidate")
	}
	if !UserTryYield(base, now) {
		t.Error("kept the core although the candidate's virtual deadline is earlier")
	}
	later := base
	later.CandDeadline = base.CurrDeadline + slice
	if UserTryYield(later, now) {
		t.Error("yielded to a candidate with a later virtual deadline")
	}
}

// TestUserTryYieldSimulatesUpdateCurr checks the mock_update_curr step: a
// candidate that loses at stint start must win once the current entity has
// burned enough CPU that its simulated deadline rolls past the candidate's.
func TestUserTryYieldSimulatesUpdateCurr(t *testing.T) {
	slice := timing.TimeSlice
	snap := Snapshot{
		NrRunning:     2,
		CurrVruntime:  0,
		CurrDeadline:  slice,
		CurrExecStart: 0,
		CurrWeight:    NiceZeroWeight,
		CurrSlice:     slice,
		// The candidate's deadline sits one half-slice behind ours.
		CandDeadline: slice + slice/2,
		HasCandidate: true,
	}
	if UserTryYield(snap, 0) {
		t.Error("yielded at stint start while holding the earlier deadline")
	}
	// After a full slice of execution the simulated vruntime reaches the
	// deadline, which rolls by one slice — now past the candidate.
	if !UserTryYield(snap, slice) {
		t.Error("kept the core after exhausting the slice (deadline should roll past the candidate)")
	}
	// A heavier entity accrues vruntime more slowly: at double weight the
	// same wall time only costs half a slice, so the deadline holds.
	heavy := snap
	heavy.CurrWeight = 2 * NiceZeroWeight
	heavy.CurrDeadline = slice / 2 // weight-scaled slice
	heavy.CandDeadline = slice * 3 / 4
	if UserTryYield(heavy, slice/4) {
		t.Error("heavy entity yielded before consuming its weighted slice")
	}
}

// TestExtMapVisibility reads the shared state map from inside running
// tasks, the way the trusted entities call user_try_yield: the snapshot
// must reflect the live runqueue (current entity + queued candidate) at
// each hook transition.
func TestExtMapVisibility(t *testing.T) {
	s := NewEEVDF()
	eng := sim.NewEngine(1, s)
	defer eng.Shutdown()
	ext := s.Ext()
	core := eng.Core(0)

	type obs struct {
		at   string
		snap Snapshot
	}
	var seen []obs
	record := func(at string) {
		seen = append(seen, obs{at, ext.Snapshot(core)})
	}

	bDone := false
	eng.Spawn("a", core, func(env *sim.Env) {
		record("a-start") // b is spawned but a holds the core
		env.Exec(time.Millisecond)
		record("a-mid")
		env.Exec(10 * time.Millisecond)
		for !bDone {
			env.Yield()
		}
		record("a-after-b") // b exited; a alone
	})
	eng.Spawn("b", core, func(env *sim.Env) {
		record("b-start")
		env.Exec(time.Millisecond)
		bDone = true
	})
	eng.Run(0)

	byAt := map[string]Snapshot{}
	for _, o := range seen {
		byAt[o.at] = o.snap
	}
	start, ok := byAt["a-start"]
	if !ok {
		t.Fatal("task a never ran")
	}
	if start.NrRunning != 2 {
		t.Fatalf("a-start NrRunning = %d, want 2 (a running + b queued)", start.NrRunning)
	}
	if !start.HasCandidate {
		t.Fatal("a-start snapshot shows no candidate although b is queued")
	}
	if start.CurrWeight != NiceZeroWeight || start.CurrSlice != s.Slice {
		t.Fatalf("a-start current entity = weight %d slice %v, want %d/%v",
			start.CurrWeight, start.CurrSlice, NiceZeroWeight, s.Slice)
	}
	mid := byAt["a-mid"]
	if mid.NrRunning < 1 {
		t.Fatalf("a-mid NrRunning = %d", mid.NrRunning)
	}
	after, ok := byAt["a-after-b"]
	if !ok {
		t.Fatal("task a never observed b's exit")
	}
	if after.NrRunning != 1 || after.HasCandidate {
		t.Fatalf("a-after-b = %+v, want NrRunning 1 and no candidate", after)
	}
	bs, ok := byAt["b-start"]
	if !ok {
		t.Fatal("task b never ran")
	}
	// When b finally runs, a is runnable again (spinning on Yield), so b
	// must see it as the candidate — and with both mid-slice, Figure 8's
	// policy evaluated on this live snapshot must agree with the kernel's
	// own preference.
	if bs.NrRunning != 2 || !bs.HasCandidate {
		t.Fatalf("b-start = %+v, want a visible as candidate", bs)
	}
}

// TestHookOrdering drives one full scheduling round trip and asserts the
// Enqueue → PickNext → OnRun → Tick → OnStop contract the engine relies
// on: the map's view of "current" must flip exactly at OnRun/OnStop edges.
func TestHookOrdering(t *testing.T) {
	s := NewEEVDF()
	eng := sim.NewEngine(1, s)
	defer eng.Shutdown()
	core := eng.Core(0)
	ext := s.Ext()

	if n := ext.Snapshot(core).NrRunning; n != 0 {
		t.Fatalf("idle core NrRunning = %d, want 0", n)
	}
	var during Snapshot
	eng.Spawn("t", core, func(env *sim.Env) {
		env.Exec(2 * time.Millisecond)
		during = ext.Snapshot(core)
	})
	eng.Run(0)
	if during.NrRunning != 1 {
		t.Fatalf("running task saw NrRunning = %d, want 1 (itself as current)", during.NrRunning)
	}
	if during.CurrDeadline <= 0 {
		t.Fatal("current entity carries no virtual deadline (Enqueue never set it)")
	}
	if during.HasCandidate {
		t.Fatal("solo task saw a phantom candidate")
	}
	// After the task exits and the engine idles the core, the current
	// entity must be gone from the map.
	final := ext.Snapshot(core)
	if final.NrRunning != 0 || final.HasCandidate {
		t.Fatalf("post-exit snapshot = %+v, want empty", final)
	}
}
