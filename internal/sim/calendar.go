package sim

import "container/heap"

// A shard is one lane's calendar: a binary heap of that lane's pending
// events. The global order is recovered through the top-level index, which
// tracks the minimum head across all non-empty shards.
type shard struct {
	id    int
	h     eventHeap
	pos   int  // index in calendar.top, -1 when empty/absent
	dirty bool // head may have changed while the top index was frozen
}

// calendar is the sharded event queue: per-lane heaps plus a heap-of-shards
// ("top") keyed by each shard's head event. Schedule, cancel, and pop cost
// O(log k) in the owning shard's population plus O(log s) in the shard
// count, instead of O(log n) in the global event count — and, more
// importantly, the per-lane heaps are what parallel windows detach from.
type calendar struct {
	shards []*shard
	top    topHeap
}

func newCalendar() *calendar {
	c := &calendar{}
	c.addShard() // shard 0: the engine lane
	return c
}

// addShard appends a new empty shard and returns its id.
func (c *calendar) addShard() int {
	s := &shard{id: len(c.shards), pos: -1}
	c.shards = append(c.shards, s)
	return s.id
}

func (c *calendar) len() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.h)
	}
	return n
}

// push inserts ev into its lane's shard.
func (c *calendar) push(ev *Event) {
	s := c.shards[ev.lane]
	heap.Push(&s.h, ev)
	if ev.index == 0 { // new head: the shard's key changed
		c.fixTop(s)
	}
}

// peek returns the globally-minimum pending event without removing it.
func (c *calendar) peek() *Event {
	if len(c.top) == 0 {
		return nil
	}
	return c.top[0].h[0]
}

// pop removes and returns the globally-minimum pending event.
func (c *calendar) pop() *Event {
	if len(c.top) == 0 {
		return nil
	}
	s := c.top[0]
	ev := heap.Pop(&s.h).(*Event)
	c.fixTop(s)
	return ev
}

// remove deletes ev from its shard (it must be pending there).
func (c *calendar) remove(ev *Event) {
	s := c.shards[ev.lane]
	wasHead := ev.index == 0
	heap.Remove(&s.h, ev.index)
	// An interior removal cannot change the shard's head: the root of the
	// heap is untouched by Remove unless the root itself was removed.
	if wasHead || len(s.h) == 0 {
		c.fixTop(s)
	}
}

// removeDeferred deletes ev from its shard without repairing the top index
// — used from lane goroutines during a parallel window, when the top index
// is frozen (detached heads make it stale anyway). The shard is marked
// dirty; the merge rebuilds the top index wholesale.
func (c *calendar) removeDeferred(ev *Event) {
	s := c.shards[ev.lane]
	heap.Remove(&s.h, ev.index)
	s.dirty = true
}

// fixTop repairs the top index after s's head changed (single violation).
func (c *calendar) fixTop(s *shard) {
	switch {
	case len(s.h) == 0 && s.pos >= 0:
		heap.Remove(&c.top, s.pos)
	case len(s.h) > 0 && s.pos < 0:
		heap.Push(&c.top, s)
	case len(s.h) > 0:
		heap.Fix(&c.top, s.pos)
	}
	s.dirty = false
}

// rebuildTop reconstructs the top index from scratch. Required after a
// parallel window: multiple shards may have changed heads, and heap.Fix is
// only sound for one violation at a time.
func (c *calendar) rebuildTop() {
	c.top = c.top[:0]
	for _, s := range c.shards {
		s.dirty = false
		if len(s.h) > 0 {
			s.pos = len(c.top)
			c.top = append(c.top, s)
		} else {
			s.pos = -1
		}
	}
	heap.Init(&c.top)
}

// topHeap orders non-empty shards by their head event's (at, seq).
type topHeap []*shard

func (t topHeap) Len() int { return len(t) }

func (t topHeap) Less(i, j int) bool {
	a, b := t[i].h[0], t[j].h[0]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (t topHeap) Swap(i, j int) {
	t[i], t[j] = t[j], t[i]
	t[i].pos = i
	t[j].pos = j
}

func (t *topHeap) Push(x any) {
	s := x.(*shard)
	s.pos = len(*t)
	*t = append(*t, s)
}

func (t *topHeap) Pop() any {
	old := *t
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.pos = -1
	*t = old[:n-1]
	return s
}
