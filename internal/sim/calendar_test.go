package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// calModel drives one randomized schedule/cancel/pop workload against a
// sharded calendar and a reference flat list, checking that every pop agrees
// with the reference's (at, seq) minimum. Used by both the quick property
// test and the shard-count invariance test.
type calModel struct {
	t    *testing.T
	cal  *calendar
	ref  []*Event // mirror of everything pending in cal
	seq  uint64
	pops []*Event
}

func newCalModel(t *testing.T, shards int) *calModel {
	m := &calModel{t: t, cal: newCalendar()}
	for i := 1; i < shards; i++ {
		m.cal.addShard()
	}
	return m
}

// refMin returns the index of the reference's (at, seq) minimum.
func (m *calModel) refMin() int {
	best := -1
	for i, ev := range m.ref {
		if best < 0 || ev.at < m.ref[best].at ||
			(ev.at == m.ref[best].at && ev.seq < m.ref[best].seq) {
			best = i
		}
	}
	return best
}

func (m *calModel) refDelete(i int) {
	m.ref[i] = m.ref[len(m.ref)-1]
	m.ref = m.ref[:len(m.ref)-1]
}

// step applies one encoded operation. The word picks the op, the lane, and
// the timestamp; timestamps are drawn from a small space so equal-(at) ties
// are common.
func (m *calModel) step(w uint32) bool {
	op := w & 3
	lane := int32((w >> 2) % uint32(len(m.cal.shards)))
	at := time.Duration((w>>8)%64) * time.Microsecond
	switch op {
	case 0, 1: // schedule
		m.seq++
		ev := &Event{at: at, seq: m.seq, lane: lane, state: evPending}
		m.cal.push(ev)
		m.ref = append(m.ref, ev)
	case 2: // cancel a random pending event
		if len(m.ref) == 0 {
			return true
		}
		i := int((w >> 8) % uint32(len(m.ref)))
		ev := m.ref[i]
		if w>>31 == 1 {
			// The parallel-window path: deferred removal with a frozen
			// top index, then the wholesale rebuild the merge performs.
			m.cal.removeDeferred(ev)
			m.cal.rebuildTop()
		} else {
			m.cal.remove(ev)
		}
		m.refDelete(i)
	case 3: // pop the global minimum
		want := m.refMin()
		got := m.cal.pop()
		if want < 0 {
			if got != nil {
				m.t.Errorf("pop from empty calendar returned (at=%v seq=%d)", got.at, got.seq)
				return false
			}
			return true
		}
		if got != m.ref[want] {
			m.t.Errorf("pop = (at=%v seq=%d), reference min = (at=%v seq=%d)",
				got.at, got.seq, m.ref[want].at, m.ref[want].seq)
			return false
		}
		m.refDelete(want)
		m.pops = append(m.pops, got)
	}
	return true
}

// drain pops everything left, still checking against the reference.
func (m *calModel) drain() bool {
	for len(m.ref) > 0 {
		if !m.step(3) {
			return false
		}
	}
	if got := m.cal.pop(); got != nil {
		m.t.Errorf("calendar still had (at=%v seq=%d) after reference drained", got.at, got.seq)
		return false
	}
	return true
}

// TestCalendarDifferentialQuick is the differential property test of the
// sharded calendar: any randomized schedule/cancel/pop workload, spread over
// any shard count, must pop in exactly the reference single-list (at, seq)
// order — including through the deferred-removal + rebuild path that
// parallel windows use.
func TestCalendarDifferentialQuick(t *testing.T) {
	prop := func(ops []uint32, shardBits uint8) bool {
		m := newCalModel(t, 1+int(shardBits%8))
		for _, w := range ops {
			if !m.step(w) {
				return false
			}
		}
		return m.drain()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCalendarShardCountInvariance replays one fixed workload under every
// shard count and requires the identical pop sequence: sharding is a data
// structure choice, never an ordering choice.
func TestCalendarShardCountInvariance(t *testing.T) {
	// A seeded splitmix64 stream keeps the workload identical across runs.
	words := make([]uint32, 4096)
	x := uint64(0xae011a)
	for i := range words {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		words[i] = uint32(z ^ (z >> 31))
	}
	var base []uint64 // (at, seq) of every pop under shards=1
	for _, shards := range []int{1, 2, 3, 4, 8} {
		m := newCalModel(t, shards)
		for _, w := range words {
			if !m.step(w) {
				t.Fatalf("shards=%d: differential failure", shards)
			}
		}
		if !m.drain() {
			t.Fatalf("shards=%d: drain failure", shards)
		}
		order := make([]uint64, len(m.pops))
		for i, ev := range m.pops {
			order[i] = uint64(ev.at)<<16 | ev.seq
		}
		if base == nil {
			base = order
			continue
		}
		if len(order) != len(base) {
			t.Fatalf("shards=%d popped %d events, shards=1 popped %d", shards, len(order), len(base))
		}
		for i := range order {
			if order[i] != base[i] {
				t.Fatalf("shards=%d pop %d = %#x, shards=1 = %#x", shards, i, order[i], base[i])
			}
		}
	}
}

// TestCancelBoundsQueueLength is the regression test for the
// cancel-leaves-garbage bug: Timer.Cancel must heap.Remove the node (and
// return it to the pool), so a re-arm loop — the watchdog pattern — keeps
// the queue at O(1), not O(re-arms).
func TestCancelBoundsQueueLength(t *testing.T) {
	e := NewEngine(0, nil)
	const rearms = 10000
	fired := 0
	var tm Timer
	for i := 1; i <= rearms; i++ {
		tm.Cancel() // no-op on the zero Timer, removal afterwards
		tm = e.Schedule(time.Duration(i)*time.Microsecond, func() { fired++ })
	}
	if n := e.cal.len(); n > 1 {
		t.Fatalf("queue holds %d events after %d re-arms, want 1 (cancel must remove)", n, rearms)
	}
	st := e.Stats()
	if st.PoolHits < rearms-10 {
		t.Fatalf("pool hits = %d after %d re-arms, want ~all (cancel must recycle)", st.PoolHits, rearms)
	}
	e.Run(0)
	if fired != 1 {
		t.Fatalf("%d timers fired, want exactly the live one", fired)
	}
}
