package sim

import (
	"fmt"
	"time"
)

// Trace, when set, receives engine execution-path notes (debugging).
var Trace func(format string, args ...any)

func debugf(format string, args ...any) {
	if Trace != nil {
		Trace(format, args...)
	}
}

// IRQHandler handles an interrupt vector raised on a core. It runs in
// "interrupt context": it may charge time via ctx.Charge, wake tasks, fire
// completions, and request rescheduling, but must not block.
type IRQHandler func(ctx *IRQCtx, vector int)

// IRQCtx is the context passed to interrupt handlers.
type IRQCtx struct {
	eng  *Engine
	core *Core
	cost time.Duration
}

// Charge adds d to the time consumed by this interrupt on the core.
func (c *IRQCtx) Charge(d time.Duration) { c.cost += d }

// Engine returns the owning engine.
func (c *IRQCtx) Engine() *Engine { return c.eng }

// Core returns the interrupted core.
func (c *IRQCtx) Core() *Core { return c.core }

// Now returns the current virtual time on the interrupted core.
func (c *IRQCtx) Now() time.Duration { return c.core.now() }

// Current returns the task that was running when the interrupt arrived
// (nil if the core was idle).
func (c *IRQCtx) Current() *Task { return c.core.current }

type pendingIRQ struct {
	vector int
}

// irqFrame is one in-service interrupt on the core's IRQ stack. The bottom
// frame is started by startIRQ and charges its handler cost through endEv;
// nested frames (preemptive delivery of a more urgent vector) run their
// handler synchronously and push their cost into the frame they
// interrupted.
type irqFrame struct {
	vector int
	rank   int
	ctx    *IRQCtx
	endEv  Timer         // bottom frame only: pending end-of-IRQ event
	endAt  time.Duration // virtual time endEv fires at
}

// DefaultMaxIRQNest bounds the IRQ stack depth (bottom frame plus nested
// preemptive deliveries) when Core.MaxIRQNest is unset.
const DefaultMaxIRQNest = 4

// Core is one simulated CPU. At any instant it is either idle, running a
// task (possibly mid-Exec or spinning), servicing an interrupt, or in a
// context-switch transition.
type Core struct {
	ID  int
	eng *Engine

	// lane is the event lane this core belongs to (0 = the serial engine
	// lane). Cores on distinct non-zero lanes may execute concurrently
	// inside parallel windows.
	lane int32

	current *Task
	idle    bool

	needResched bool

	// Mid-exec bookkeeping: when the current task is inside Exec or
	// SpinWait, execStart records when the current slice began.
	execStart  time.Duration
	execEv     Timer // pending exec-completion event (unarmed while spinning)
	execEvFrom string

	inIRQ        bool
	inTransition bool
	pending      []pendingIRQ
	irqStack     []*irqFrame
	irqRank      func(vector int) int

	// MaxIRQNest bounds the IRQ stack depth when an IRQ ranking is
	// installed (DefaultMaxIRQNest if zero).
	MaxIRQNest int

	// inBody is set while control is handed to the current task's body
	// goroutine (between resume and yield). The body is the only context
	// that can execute during that window, and it cannot be suspended
	// mid-statement: scheduling operations it triggers (wakes, spawns)
	// must defer preemption of this core to the next decision point.
	inBody bool

	irqHandler IRQHandler

	tickEv Timer

	// Stats.
	IdleTime       time.Duration
	idleSince      time.Duration
	IRQCount       int
	NestedIRQCount int
	SwitchCount    int
	PreemptCount   int
}

func newCore(e *Engine, id int) *Core {
	return &Core{ID: id, eng: e, idle: true}
}

// Current returns the task running on the core, or nil if idle.
func (c *Core) Current() *Task { return c.current }

// Idle reports whether the core is idle.
func (c *Core) Idle() bool { return c.idle }

// Lane returns the event lane this core belongs to.
func (c *Core) Lane() int { return int(c.lane) }

// SetLane assigns the core to an event lane created with Engine.NewLane.
// Must be called during setup, before the simulation runs.
func (c *Core) SetLane(lane int) {
	if lane < 0 || lane >= len(c.eng.cal.shards) {
		panic("sim: SetLane: no such lane")
	}
	c.lane = int32(lane)
}

// now returns the core's current virtual time: the lane-local clock inside
// a parallel window, the global clock otherwise.
func (c *Core) now() time.Duration {
	if w := c.eng.win; w != nil {
		lc := w.lcs[c.lane]
		if lc == nil {
			panic("sim: clock read on a lane not participating in the window")
		}
		return lc.now
	}
	return c.eng.now
}

// Now returns the current virtual time as observed on this core.
func (c *Core) Now() time.Duration { return c.now() }

// Schedule enqueues fn on this core's lane after delay of core-local
// virtual time.
func (c *Core) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return c.eng.schedule(c, c, c.now()+delay, fn)
}

// ScheduleAt enqueues fn on this core's lane at absolute virtual time at.
func (c *Core) ScheduleAt(at time.Duration, fn func()) Timer {
	return c.eng.schedule(c, c, at, fn)
}

// ScheduleOn enqueues fn on target's lane at absolute virtual time at,
// attributed to this core's execution context. This is the cross-lane
// scheduling primitive (netsim frame arrivals); inside a parallel window,
// at must fall at or beyond the window end — i.e. at least the lookahead
// bound away — or the engine panics.
func (c *Core) ScheduleOn(target *Core, at time.Duration, fn func()) Timer {
	return c.eng.schedule(c, target, at, fn)
}

// SetIRQHandler installs the core's interrupt handler.
func (c *Core) SetIRQHandler(h IRQHandler) { c.irqHandler = h }

// SetIRQRank installs a priority ranking for interrupt vectors: lower rank
// is more urgent. With a ranking installed, a raised vector that strictly
// outranks the one in service is delivered immediately as a nested
// interrupt (bounded by MaxIRQNest frames) instead of waiting for it to
// finish, and pended vectors are drained most-urgent-first. A nil ranking
// (the default) keeps strict FIFO, non-nesting delivery.
func (c *Core) SetIRQRank(rank func(vector int) int) { c.irqRank = rank }

func (c *Core) rankOf(vector int) int {
	if c.irqRank == nil {
		return 0
	}
	return c.irqRank(vector)
}

func (c *Core) maxNest() int {
	if c.MaxIRQNest > 0 {
		return c.MaxIRQNest
	}
	return DefaultMaxIRQNest
}

// SetNeedResched marks the core for rescheduling at the next scheduling
// decision point (interrupt return or tick).
func (c *Core) SetNeedResched() { c.needResched = true }

// NeedResched reports whether a reschedule is pending.
func (c *Core) NeedResched() bool { return c.needResched }

// RaiseIRQ raises vector on the core. If the core is servicing another
// interrupt or mid context-switch, delivery is deferred until it finishes —
// unless an IRQ ranking is installed and vector strictly outranks the
// interrupt in service, in which case it preempts it as a nested interrupt.
func (c *Core) RaiseIRQ(vector int) {
	if c.inTransition {
		c.pending = append(c.pending, pendingIRQ{vector})
		return
	}
	if c.inIRQ {
		if c.irqRank != nil && len(c.irqStack) < c.maxNest() {
			if inner := c.irqStack[len(c.irqStack)-1]; c.irqRank(vector) < inner.rank {
				c.nestIRQ(vector)
				return
			}
		}
		c.pending = append(c.pending, pendingIRQ{vector})
		return
	}
	c.startIRQ(vector)
}

func (c *Core) startIRQ(vector int) {
	e := c.eng
	now := c.now()
	c.IRQCount++
	debugf("%v core%d startIRQ vec=%d cur=%v", now, c.ID, vector, c.current)
	if c.idle {
		// Fold accumulated idle time but keep the core logically idle:
		// the ISR interrupts the idle loop, and leaving idle (with its
		// statistics-update toll) only happens if the IRQ return path
		// dispatches a task.
		c.IdleTime += now - c.idleSince
		c.idleSince = now
	}
	if c.current != nil {
		c.suspendExec()
	}
	c.inIRQ = true
	f := &irqFrame{vector: vector, rank: c.rankOf(vector), ctx: &IRQCtx{eng: e, core: c}}
	c.irqStack = append(c.irqStack, f)
	if c.irqHandler != nil {
		c.irqHandler(f.ctx, vector)
	}
	if f.ctx.cost > 0 {
		f.endAt = c.now() + f.ctx.cost
		f.endEv = c.Schedule(f.ctx.cost, func() { c.frameEnd(f) })
		return
	}
	c.frameEnd(f)
}

// nestIRQ services vector immediately on top of the in-progress interrupt:
// the handler runs now, and its execution time pushes back the completion
// of the interrupted frame — by rescheduling its end event, or, when the
// interrupted handler is itself still executing, by folding into the charge
// it is accumulating.
func (c *Core) nestIRQ(vector int) {
	e := c.eng
	c.IRQCount++
	c.NestedIRQCount++
	debugf("%v core%d nestIRQ vec=%d depth=%d", c.now(), c.ID, vector, len(c.irqStack))
	f := &irqFrame{vector: vector, rank: c.rankOf(vector), ctx: &IRQCtx{eng: e, core: c}}
	c.irqStack = append(c.irqStack, f)
	if c.irqHandler != nil {
		c.irqHandler(f.ctx, vector)
	}
	c.irqStack = c.irqStack[:len(c.irqStack)-1]
	cost := f.ctx.cost
	if cost <= 0 {
		return
	}
	parent := c.irqStack[len(c.irqStack)-1]
	if !parent.endEv.Armed() {
		parent.ctx.cost += cost
		return
	}
	parent.endEv.Cancel()
	parent.endAt += cost
	parent.endEv = c.ScheduleAt(parent.endAt, func() { c.frameEnd(parent) })
}

// suspendExec pauses the current task's Exec/Spin slice, folding the elapsed
// time into its accounting.
func (c *Core) suspendExec() {
	t := c.current
	if t == nil {
		return
	}
	now := c.now()
	debugf("%v core%d suspendExec %s op=%d ev=%v", now, c.ID, t.Name, t.op, c.execEv.Armed())
	elapsed := now - c.execStart
	t.CPUTime += elapsed
	switch t.op {
	case opExec:
		t.execRem -= elapsed
		if t.execRem < 0 {
			t.execRem = 0
		}
		if c.execEv.Armed() {
			c.execEv.Cancel()
		}
		c.execEv = Timer{}
	case opSpin:
		// Nothing to cancel; spinning has no completion event.
	}
	c.execStart = now
}

// resumeExec restarts the current task's suspended Exec/Spin slice, or
// resumes the task body if the slice is complete.
func (c *Core) resumeExec() {
	t := c.current
	if t == nil {
		panic("sim: resumeExec on empty core")
	}
	c.execStart = c.now()
	switch t.op {
	case opExec:
		if t.execRem <= 0 {
			c.eng.runCurrent(c)
			return
		}
		if c.execEv.Armed() {
			panic(fmt.Sprintf("sim: resumeExec overwriting pending execEv from %s at=%v now=%v cur=%s",
				c.execEvFrom, c.execEv.At(), c.now(), t.Name))
		}
		c.execEvFrom = "resumeExec"
		c.execEv = c.Schedule(t.execRem, func() { c.execDone() })
	case opSpin:
		if t.spinOn.Done() {
			c.eng.runCurrent(c)
			return
		}
		// Keep spinning; the completion's OnFire hook resumes us.
	default:
		c.eng.runCurrent(c)
	}
}

func (c *Core) execDone() {
	t := c.current
	c.execEv = Timer{}
	if t == nil || t.op != opExec {
		panic(fmt.Sprintf("sim: stray execDone: %s", c.eng.DebugCore(c)))
	}
	t.CPUTime += c.now() - c.execStart
	t.execRem = 0
	c.eng.runCurrent(c)
}

// frameEnd retires the bottom IRQ frame once its charged cost has elapsed
// (nested frames retire synchronously inside nestIRQ).
func (c *Core) frameEnd(f *irqFrame) {
	debugf("%v core%d endIRQ vec=%d cur=%v", c.now(), c.ID, f.vector, c.current)
	if n := len(c.irqStack); n == 0 || c.irqStack[n-1] != f {
		panic("sim: IRQ frame ended out of order")
	}
	c.irqStack = c.irqStack[:len(c.irqStack)-1]
	f.endEv = Timer{}
	c.inIRQ = false
	if len(c.pending) > 0 {
		c.startIRQ(c.popPending())
		return
	}
	c.afterIRQ()
}

// popPending removes and returns the next pended vector: the most urgent by
// the installed rank (FIFO among equals), or plain FIFO without a ranking.
func (c *Core) popPending() int {
	best := 0
	if c.irqRank != nil {
		r := c.irqRank(c.pending[0].vector)
		for i := 1; i < len(c.pending); i++ {
			if ri := c.irqRank(c.pending[i].vector); ri < r {
				best, r = i, ri
			}
		}
	}
	v := c.pending[best].vector
	c.pending = append(c.pending[:best], c.pending[best+1:]...)
	return v
}

// afterIRQ is the return-from-interrupt scheduling decision point.
func (c *Core) afterIRQ() {
	e := c.eng
	if c.current == nil {
		// Interrupted the idle loop (or a transition target vanished):
		// dispatch if anything became runnable.
		e.reschedule(c, true)
		return
	}
	if c.needResched {
		e.preemptCurrent(c)
		return
	}
	c.resumeExec()
}

// kick forces a scheduling decision point on the core, as a reschedule IPI
// would. It is a no-op while the core is in an interrupt or transition
// (those end with a decision point anyway).
func (c *Core) kick() {
	if c.inIRQ || c.inTransition || c.current == nil {
		return
	}
	c.suspendExec()
	c.afterIRQ()
}

func (c *Core) leaveIdleAccounting() {
	if c.idle {
		c.IdleTime += c.now() - c.idleSince
		c.idle = false
	}
}

func (c *Core) goIdle() {
	c.idle = true
	c.idleSince = c.now()
	c.stopTick()
}

func (c *Core) armTick() {
	e := c.eng
	if e.TickPeriod <= 0 || c.tickEv.Armed() {
		return
	}
	var tick func()
	tick = func() {
		c.tickEv = Timer{}
		if c.current == nil {
			return
		}
		c.tickEv = c.Schedule(e.TickPeriod, tick)
		if e.sched != nil {
			e.sched.Tick(c)
		}
		if c.needResched && !c.inIRQ && !c.inTransition && c.current != nil {
			c.suspendExec()
			e.preemptCurrent(c)
		}
	}
	c.tickEv = c.Schedule(e.TickPeriod, tick)
}

func (c *Core) stopTick() {
	if c.tickEv.Armed() {
		c.tickEv.Cancel()
	}
	c.tickEv = Timer{}
}

// preemptCurrent moves the running task back to the runqueue and schedules
// the next one.
func (e *Engine) preemptCurrent(c *Core) {
	t := c.current
	if t == nil {
		panic("sim: preempt on idle core")
	}
	c.PreemptCount++
	if e.TaskStopHook != nil {
		e.TaskStopHook(c, t)
	}
	e.sched.OnStop(t, true)
	t.state = TaskRunnable
	t.waitStart = c.now()
	t.core = nil
	c.current = nil
	e.sched.Enqueue(t)
	e.reschedule(c, true)
}

// reschedule picks the next task for c and switches to it, charging the
// kernel model's transition costs. If charge is false the switch is free
// (used only by direct-resume paths).
func (e *Engine) reschedule(c *Core, charge bool) {
	if c.current != nil {
		panic("sim: reschedule with current task")
	}
	if c.inTransition {
		return
	}
	if e.sched == nil {
		// Scheduler-less engines (pure event/device simulations) have
		// no tasks to dispatch.
		if !c.idle {
			c.goIdle()
		}
		c.drainPending()
		return
	}
	next := e.sched.PickNext(c)
	if next == nil {
		c.needResched = false
		if !c.idle {
			// Switching to the idle task costs a context switch,
			// overlapped with whatever the core was waiting for.
			if charge && e.CtxSwitchCost > 0 {
				c.inTransition = true
				c.Schedule(e.CtxSwitchCost, func() {
					c.inTransition = false
					if c.current == nil && e.sched.NrRunnable(c) > 0 {
						e.reschedule(c, true)
						return
					}
					c.goIdle()
					c.drainPending()
				})
				return
			}
			c.goIdle()
		}
		c.drainPending()
		return
	}

	cost := time.Duration(0)
	if charge {
		cost = e.CtxSwitchCost
		if c.idle {
			// Leaving idle pays the statistics-update toll of
			// Figure 4 step 2 in addition to the switch.
			cost += e.IdleExitCost
		}
	}
	c.leaveIdleAccounting()
	c.needResched = false
	if cost > 0 {
		c.inTransition = true
		c.Schedule(cost, func() {
			c.inTransition = false
			e.startTask(c, next)
		})
		return
	}
	e.startTask(c, next)
}

func (c *Core) drainPending() {
	for len(c.pending) > 0 && !c.inIRQ && !c.inTransition {
		c.startIRQ(c.popPending())
	}
}

// startTask makes t current on c and resumes its body.
func (e *Engine) startTask(c *Core, t *Task) {
	debugf("%v core%d startTask %s op=%d", c.now(), c.ID, t.Name, t.op)
	c.SwitchCount++
	c.current = t
	t.core = c
	t.state = TaskRunning
	e.sched.OnRun(t)
	if e.TaskRunHook != nil {
		e.TaskRunHook(c, t)
	}
	c.armTick()
	// Inserted user-handler frames (§6.1) run on the kernel's return
	// path when the task is switched back in — crucially also when the
	// task was preempted mid-spin, whose body won't otherwise resume
	// until the very completion the handler delivers.
	if len(t.onResume) > 0 {
		// The handler frame executes in transition context so that a
		// completion it fires cannot re-enter the task body before the
		// frame's cost has been charged (continueTask then observes the
		// fired completion and resumes the body exactly once).
		c.inTransition = true
		var cost time.Duration
		for len(t.onResume) > 0 {
			fn := t.onResume[0]
			t.onResume = t.onResume[1:]
			cost += fn()
		}
		if cost > 0 {
			debugf("%v core%d hook-transition %s cost=%v", c.now(), c.ID, t.Name, cost)
			t.CPUTime += cost
			c.Schedule(cost, func() {
				c.inTransition = false
				if c.current != t {
					return
				}
				debugf("%v core%d hook-continue %s op=%d", c.now(), c.ID, t.Name, t.op)
				e.continueTask(c, t)
			})
			return
		}
		c.inTransition = false
	}
	e.continueTask(c, t)
}

// continueTask resumes t's in-progress operation (or body) on c.
func (e *Engine) continueTask(c *Core, t *Task) {
	if len(c.pending) > 0 {
		// An interrupt arrived during the switch; deliver it before
		// the task makes progress.
		c.execStart = c.now()
		c.drainPending()
		return
	}
	switch t.op {
	case opExec, opSpin:
		// Resuming a preempted slice.
		c.resumeExec()
	default:
		e.runCurrent(c)
	}
}

// runCurrent resumes the current task's goroutine and services the ops it
// parks with, until the task starts a timed wait (exec/spin) or leaves the
// core (block/yield/done).
func (e *Engine) runCurrent(c *Core) {
	for {
		t := c.current
		if t == nil {
			panic("sim: runCurrent on idle core")
		}
		debugf("%v core%d runCurrent resume %s", c.now(), c.ID, t.Name)
		// Hand control to the task body.
		c.inBody = true
		t.resume <- struct{}{}
		<-t.yield
		c.inBody = false
		debugf("%v core%d parked %s op=%d", c.now(), c.ID, t.Name, t.op)

		switch t.op {
		case opExec:
			// A wake from inside the body may have requested
			// preemption; honor it now that the task has parked.
			if c.needResched {
				e.preemptCurrent(c)
				return
			}
			c.execStart = c.now()
			rem := t.execRem
			if c.execEv.Armed() {
				panic("sim: runCurrent overwriting pending execEv from " + c.execEvFrom)
			}
			c.execEvFrom = "runCurrent:" + t.Name
			c.execEv = c.Schedule(rem, func() { c.execDone() })
			return
		case opSpin:
			if t.spinOn.Done() {
				continue // resume immediately
			}
			if c.needResched {
				e.preemptCurrent(c)
				return
			}
			c.execStart = c.now()
			comp := t.spinOn
			spinTask := t
			comp.OnFire(func() { e.spinFired(spinTask) })
			return
		case opBlock:
			if e.TaskStopHook != nil {
				e.TaskStopHook(c, t)
			}
			e.sched.OnStop(t, false)
			t.state = TaskBlocked
			t.core = nil
			c.current = nil
			e.reschedule(c, true)
			return
		case opYield:
			if e.TaskStopHook != nil {
				e.TaskStopHook(c, t)
			}
			e.sched.OnStop(t, true)
			t.state = TaskRunnable
			t.waitStart = c.now()
			t.core = nil
			c.current = nil
			e.sched.Enqueue(t)
			e.reschedule(c, true)
			return
		case opDone:
			if e.TaskStopHook != nil {
				e.TaskStopHook(c, t)
			}
			e.sched.OnStop(t, false)
			t.state = TaskDone
			t.core = nil
			c.current = nil
			e.taskFinished(t)
			e.reschedule(c, true)
			return
		default:
			panic("sim: task parked without op")
		}
	}
}

// spinFired handles a Completion firing while a task is (or was) spinning
// on it. If the task is still current on its core, it resumes immediately
// with no scheduler involvement — the defining property of polling. If the
// task was preempted mid-spin, it simply finds the completion done when it
// is next scheduled.
func (e *Engine) spinFired(t *Task) {
	if t.state != TaskRunning || t.op != opSpin {
		return
	}
	c := t.core
	if c == nil || c.current != t {
		return
	}
	if c.inIRQ || c.inTransition {
		// The interrupt handler that fired the completion is still
		// accruing cost; afterIRQ/resumeExec will notice Done().
		return
	}
	t.CPUTime += c.now() - c.execStart
	e.runCurrent(c)
}
