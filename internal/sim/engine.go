// Package sim is a deterministic discrete-event simulator of a multicore
// machine: virtual nanosecond time, simulated cores, tasks (coroutines),
// interrupt delivery, and a pluggable thread scheduler.
//
// The engine and every task body execute mutually exclusively — control is
// handed back and forth over unbuffered channels — so simulations are
// deterministic and free of data races by construction, while task bodies
// are written as ordinary sequential Go code.
//
// All latency- and scheduling-sensitive experiments of the Aeolia
// reproduction (Figures 2-5, 10-13, 17) run on this engine; the calibrated
// cost constants live in internal/timing.
package sim

import (
	"fmt"
	"time"

	"aeolia/internal/timing"
	"aeolia/internal/trace"
)

// Engine owns virtual time, the event queue, the cores, and the tasks.
type Engine struct {
	now   time.Duration
	queue eventHeap
	seq   uint64

	cores []*Core
	sched Scheduler
	tasks []*Task

	liveTasks int
	running   bool

	// CtxSwitchCost and IdleExitCost parameterize the kernel scheduler
	// model; they default to the paper's measured constants.
	CtxSwitchCost time.Duration
	IdleExitCost  time.Duration

	// TickPeriod is the scheduler tick. Zero disables ticking.
	TickPeriod time.Duration

	// TaskRunHook, if set, runs whenever a task is switched in on a core
	// (the kernel's context-switch-in path; AeoKern uses it to install
	// the incoming thread's UINV/UPIDADDR).
	TaskRunHook func(c *Core, t *Task)
	// TaskStopHook runs whenever a task is switched out of a core.
	TaskStopHook func(c *Core, t *Task)

	// Tracer, when non-nil, receives typed events from every instrumented
	// subsystem bound to this engine (internal/trace). Emit points pay a
	// single nil check when tracing is off; emitting never consumes
	// virtual time, so traced and untraced runs are time-identical.
	Tracer *trace.Tracer
}

// Scheduler is the thread-scheduling policy plugged into the engine. The
// running task of a core is *not* in the runqueue; PickNext pops the next
// task to run.
type Scheduler interface {
	// Bind attaches the scheduler to the engine before any task runs.
	Bind(e *Engine)
	// Enqueue inserts a runnable task into its core's runqueue.
	Enqueue(t *Task)
	// PickNext pops the best runnable task for core c, or nil for idle.
	PickNext(c *Core) *Task
	// NrRunnable returns the number of queued runnable tasks on c,
	// excluding the running one.
	NrRunnable(c *Core) int
	// ShouldPreempt reports whether newly-woken t should preempt the
	// task currently running on core c.
	ShouldPreempt(t *Task, c *Core) bool
	// Tick is the periodic scheduler tick for c; it may set need-resched
	// on the core.
	Tick(c *Core)
	// OnRun notifies that t was switched in on its core.
	OnRun(t *Task)
	// OnStop notifies that t was switched out; requeue reports whether
	// the task stays runnable (preemption/yield) as opposed to
	// blocking or exiting. OnStop must not re-enqueue the task; the
	// engine calls Enqueue itself.
	OnStop(t *Task, requeue bool)
}

// NewEngine creates an engine with n cores governed by sched. sched may be
// nil only if no tasks are spawned (pure event/device simulations).
func NewEngine(n int, sched Scheduler) *Engine {
	e := &Engine{
		sched:         sched,
		CtxSwitchCost: timing.ContextSwitch,
		IdleExitCost:  timing.IdleExit,
		TickPeriod:    timing.SchedTick,
	}
	for i := 0; i < n; i++ {
		e.cores = append(e.cores, newCore(e, i))
	}
	if sched != nil {
		sched.Bind(e)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Cores returns the simulated cores.
func (e *Engine) Cores() []*Core { return e.cores }

// Core returns core i.
func (e *Engine) Core(i int) *Core { return e.cores[i] }

// Scheduler returns the plugged-in scheduler.
func (e *Engine) Scheduler() Scheduler { return e.sched }

// Schedule enqueues fn to run after delay (>= 0) of virtual time.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute virtual time at (>= now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.queue.push(ev)
	return ev
}

// Spawn creates a task pinned to core and makes it runnable at the current
// virtual time. The body runs on its own goroutine under the engine's
// coroutine discipline.
func (e *Engine) Spawn(name string, core *Core, body func(*Env)) *Task {
	t := &Task{
		ID:     len(e.tasks),
		Name:   name,
		eng:    e,
		body:   body,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		state:  TaskNew,
		core:   nil,
	}
	t.affinity = core
	e.tasks = append(e.tasks, t)
	e.liveTasks++

	go taskMain(t)

	t.state = TaskRunnable
	t.StartedAt = e.now
	t.waitStart = e.now
	e.sched.Enqueue(t)
	e.kickAfterWake(t)
	return t
}

func taskMain(t *Task) {
	// Wait for the first dispatch.
	<-t.resume
	defer func() {
		if r := recover(); r != nil {
			if r != errAborted {
				panic(r)
			}
			// Aborted by Engine.Shutdown: unwind quietly.
			t.yield <- struct{}{}
		}
	}()
	t.body(&Env{t: t})
	t.op = opDone
	t.yield <- struct{}{}
}

var errAborted = fmt.Errorf("sim: task aborted")

// Wake makes a blocked task runnable, following the kernel wakeup model: the
// caller is responsible for charging ttwu cost (interrupt handlers do so via
// IRQCtx.Charge; tasks via Exec). Waking a non-blocked task is a no-op.
func (e *Engine) Wake(t *Task) {
	if t.state != TaskBlocked {
		return
	}
	t.state = TaskRunnable
	t.waitStart = e.now
	e.sched.Enqueue(t)
	e.kickAfterWake(t)
}

// kickAfterWake triggers dispatch/preemption on the woken task's core.
func (e *Engine) kickAfterWake(t *Task) {
	c := t.affinity
	if c.current == t {
		panic("sim: woke the running task")
	}
	switch {
	case c.inIRQ || c.inTransition:
		// endIRQ / the transition completion performs the dispatch,
		// but the wakeup-preemption decision must be taken now.
		if c.current != nil && e.sched.ShouldPreempt(t, c) {
			c.needResched = true
		}
	case c.inBody:
		// The wake came from inside the running task's own body (the
		// only context that executes while inBody holds). The body
		// cannot be suspended mid-statement, so record the preemption
		// and honor it at the task's next park or scheduler tick.
		if e.sched.ShouldPreempt(t, c) {
			c.needResched = true
		}
	case c.current == nil:
		e.reschedule(c, true)
	case e.sched.ShouldPreempt(t, c):
		c.needResched = true
		c.kick()
	}
}

// Run drives the simulation until the event queue empties or the given
// virtual-time horizon passes (0 means no horizon). It returns the final
// virtual time.
func (e *Engine) Run(until time.Duration) time.Duration {
	e.running = true
	for {
		ev := e.queue.peek()
		if ev == nil {
			break
		}
		if until > 0 && ev.at > until {
			e.now = until
			break
		}
		ev = e.queue.pop()
		if ev == nil {
			break
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	// A bounded run always advances the clock to its horizon, so callers
	// polling in slices make progress even when the queue drains.
	if until > 0 && e.now < until {
		e.now = until
	}
	e.running = false
	return e.now
}

// LiveTasks returns the number of tasks not yet finished.
func (e *Engine) LiveTasks() int { return e.liveTasks }

// Shutdown aborts all unfinished task goroutines so tests do not leak them.
// The simulation must not be Run again afterwards.
func (e *Engine) Shutdown() {
	for _, t := range e.tasks {
		if t.state == TaskDone || t.state == TaskNew {
			continue
		}
		t.aborted = true
		t.resume <- struct{}{}
		<-t.yield
		t.state = TaskDone
	}
}

func (e *Engine) taskFinished(t *Task) {
	t.FinishedAt = e.now
	e.liveTasks--
}

// DebugCore renders a core's execution state (diagnostics).
func (e *Engine) DebugCore(c *Core) string {
	cur := "idle"
	op := "-"
	spin := "-"
	if c.current != nil {
		cur = c.current.Name
		op = fmt.Sprint(int(c.current.op))
		if c.current.spinOn != nil {
			spin = fmt.Sprint(c.current.spinOn.Done())
		}
	}
	return fmt.Sprintf("cur=%s op=%s spinDone=%s execEv=%v inIRQ=%v inTrans=%v pend=%d execRem=%v",
		cur, op, spin, c.execEv != nil, c.inIRQ, c.inTransition, len(c.pending), func() time.Duration {
			if c.current != nil {
				return c.current.execRem
			}
			return 0
		}())
}
