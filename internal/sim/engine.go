// Package sim is a deterministic discrete-event simulator of a multicore
// machine: virtual nanosecond time, simulated cores, tasks (coroutines),
// interrupt delivery, and a pluggable thread scheduler.
//
// The engine and every task body execute mutually exclusively — control is
// handed back and forth over unbuffered channels — so simulations are
// deterministic and free of data races by construction, while task bodies
// are written as ordinary sequential Go code.
//
// Scale refactor: events live in a sharded calendar (per-lane heaps under a
// global min-index), event nodes and task-runner goroutines are pooled, and
// — when Config.ParallelLanes is set — lanes whose next events fall inside
// a conservative lookahead window execute concurrently between barriers,
// with a merge that reassigns sequence numbers in exactly the order a
// serial run would have, so results stay byte-identical either way.
//
// All latency- and scheduling-sensitive experiments of the Aeolia
// reproduction (Figures 2-5, 10-13, 17) run on this engine; the calibrated
// cost constants live in internal/timing.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeolia/internal/timing"
	"aeolia/internal/trace"
)

// Config selects the engine's execution strategy. The zero value is the
// classic fully-serial engine.
type Config struct {
	// ParallelLanes enables conservative parallel execution: lanes whose
	// next events all fall inside the lookahead window run concurrently on
	// real goroutines between barriers. Off by default; when on, results
	// are byte-identical to serial mode by construction.
	ParallelLanes bool

	// Lookahead bounds each parallel window. It must not exceed the
	// minimum cross-lane interaction latency (in this stack: the minimum
	// netsim link latency — uintr posts and device completions are
	// same-core and hence same-lane). Zero disables windows.
	Lookahead time.Duration

	// ParallelAfter suppresses windows before this virtual time, keeping
	// setup/warmup phases (spawns, topology changes) strictly serial.
	ParallelAfter time.Duration
}

// EngineStats reports execution-strategy counters (diagnostics/benchmarks).
type EngineStats struct {
	Windows      uint64 // parallel windows executed
	WindowEvents uint64 // events fired inside parallel windows
	SerialEvents uint64 // events fired on the serial path
	PoolHits     uint64 // event allocations served from the free pool
	PoolMisses   uint64 // event allocations that hit the Go allocator
}

// Engine owns virtual time, the event calendar, the cores, and the tasks.
type Engine struct {
	now time.Duration
	cal *calendar
	seq uint64

	// Event-node free pool. Nodes are recycled the moment they fire or are
	// cancelled (serial path) or at the window merge (parallel path); Timer
	// generations make stale handles to recycled nodes inert.
	pool []*Event

	// win is non-nil while a parallel window is executing on lane
	// goroutines. The engine goroutine is parked in wg.Wait() for the
	// duration, so any unattributed engine call observing win != nil is a
	// determinism bug and panics.
	win *window

	cores []*Core
	sched Scheduler
	tasks []*Task

	// Task-runner goroutine pool: finished tasks release their runner for
	// the next Spawn instead of leaking a parked goroutine per task.
	runnersMu   sync.Mutex
	freeRunners []*runner
	allRunners  []*runner

	liveTasks atomic.Int64
	running   bool

	stats EngineStats

	// Config selects serial vs parallel-lane execution; see Config.
	Config Config

	// CtxSwitchCost and IdleExitCost parameterize the kernel scheduler
	// model; they default to the paper's measured constants.
	CtxSwitchCost time.Duration
	IdleExitCost  time.Duration

	// TickPeriod is the scheduler tick. Zero disables ticking.
	TickPeriod time.Duration

	// TaskRunHook, if set, runs whenever a task is switched in on a core
	// (the kernel's context-switch-in path; AeoKern uses it to install
	// the incoming thread's UINV/UPIDADDR).
	TaskRunHook func(c *Core, t *Task)
	// TaskStopHook runs whenever a task is switched out of a core.
	TaskStopHook func(c *Core, t *Task)

	// Tracer, when non-nil, receives typed events from every instrumented
	// subsystem bound to this engine (internal/trace). Emit points pay a
	// single nil check when tracing is off; emitting never consumes
	// virtual time, so traced and untraced runs are time-identical.
	// A non-nil Tracer also suppresses parallel windows: the trace is a
	// single ordered stream.
	Tracer *trace.Tracer
}

// Scheduler is the thread-scheduling policy plugged into the engine. The
// running task of a core is *not* in the runqueue; PickNext pops the next
// task to run.
type Scheduler interface {
	// Bind attaches the scheduler to the engine before any task runs.
	Bind(e *Engine)
	// Enqueue inserts a runnable task into its core's runqueue.
	Enqueue(t *Task)
	// PickNext pops the best runnable task for core c, or nil for idle.
	PickNext(c *Core) *Task
	// NrRunnable returns the number of queued runnable tasks on c,
	// excluding the running one.
	NrRunnable(c *Core) int
	// ShouldPreempt reports whether newly-woken t should preempt the
	// task currently running on core c.
	ShouldPreempt(t *Task, c *Core) bool
	// Tick is the periodic scheduler tick for c; it may set need-resched
	// on the core.
	Tick(c *Core)
	// OnRun notifies that t was switched in on its core.
	OnRun(t *Task)
	// OnStop notifies that t was switched out; requeue reports whether
	// the task stays runnable (preemption/yield) as opposed to
	// blocking or exiting. OnStop must not re-enqueue the task; the
	// engine calls Enqueue itself.
	OnStop(t *Task, requeue bool)
}

// NewEngine creates an engine with n cores governed by sched. sched may be
// nil only if no tasks are spawned (pure event/device simulations).
// All cores start on lane 0 (the engine lane, never parallelized); assign
// cores to their own lanes via NewLane/SetLane to enable windows.
func NewEngine(n int, sched Scheduler) *Engine {
	e := &Engine{
		cal:           newCalendar(),
		CtxSwitchCost: timing.ContextSwitch,
		IdleExitCost:  timing.IdleExit,
		TickPeriod:    timing.SchedTick,
		sched:         sched,
	}
	for i := 0; i < n; i++ {
		e.cores = append(e.cores, newCore(e, i))
	}
	if sched != nil {
		sched.Bind(e)
	}
	return e
}

// Now returns the current virtual time. It is an engine-context (serial)
// read: inside a parallel window each lane has its own clock, so
// unattributed reads are a determinism bug — use Core.Now, Env.Now, or
// IRQCtx.Now from simulation code.
func (e *Engine) Now() time.Duration {
	if e.win != nil {
		panic("sim: unattributed Engine.Now() during a parallel window; use Core/Env/IRQCtx.Now")
	}
	return e.now
}

// Cores returns the simulated cores.
func (e *Engine) Cores() []*Core { return e.cores }

// Core returns core i.
func (e *Engine) Core(i int) *Core { return e.cores[i] }

// Scheduler returns the plugged-in scheduler.
func (e *Engine) Scheduler() Scheduler { return e.sched }

// Stats returns the execution-strategy counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// NewLane creates a fresh event lane (calendar shard) and returns its id.
// Assign cores to it with Core.SetLane. Lane 0 always exists and holds
// unattributed events; it is never parallelized.
func (e *Engine) NewLane() int {
	if e.win != nil {
		panic("sim: NewLane during a parallel window")
	}
	return e.cal.addShard()
}

// Lanes returns the number of lanes, including the engine lane 0.
func (e *Engine) Lanes() int { return len(e.cal.shards) }

// Schedule enqueues fn to run after delay (>= 0) of virtual time. The
// event is unattributed (engine lane); simulation code running on a core
// should use Core/Env scheduling so the event lands in that core's lane.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return e.schedule(nil, nil, e.nowUnattr()+delay, fn)
}

// ScheduleAt enqueues fn at absolute virtual time at (>= now),
// unattributed (engine lane).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) Timer {
	return e.schedule(nil, nil, at, fn)
}

func (e *Engine) nowUnattr() time.Duration {
	if e.win != nil {
		panic("sim: unattributed Engine.Schedule during a parallel window; use Core/Env scheduling")
	}
	return e.now
}

// schedule is the single scheduling entry point. from is the core whose
// execution context is scheduling (nil = engine context); target is the
// core whose lane the event belongs to (nil = engine lane 0).
func (e *Engine) schedule(from, target *Core, at time.Duration, fn func()) Timer {
	var lane int32
	if target != nil {
		lane = target.lane
	}
	w := e.win
	if w == nil {
		if at < e.now {
			panic(fmt.Sprintf("sim: schedule in the past: %v < %v", at, e.now))
		}
		e.seq++
		ev := e.alloc(at, e.seq, lane, fn)
		e.cal.push(ev)
		return Timer{ev: ev, gen: ev.gen}
	}
	// Inside a parallel window: the emission is buffered on the executing
	// lane and receives its real sequence number at the merge.
	if from == nil {
		panic("sim: unattributed Engine.Schedule during a parallel window; use Core/Env scheduling")
	}
	lc := w.lcs[from.lane]
	if lc == nil || lc.cur == nil {
		panic("sim: schedule from a lane not participating in the window")
	}
	if at < lc.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v (lane %d)", at, lc.now, from.lane))
	}
	ev := &Event{eng: e, at: at, seq: tentBit | lc.tent, lane: lane, fn: fn}
	lc.tent++
	if lane == from.lane && at < w.end {
		ev.state = evWindow
		pushHeap(&lc.wheap, ev)
	} else {
		if at < w.end {
			panic(fmt.Sprintf("sim: cross-lane event at %v inside lookahead window ending %v (Lookahead exceeds the minimum cross-lane latency)", at, w.end))
		}
		ev.state = evEmitted
	}
	lc.cur.emits = append(lc.cur.emits, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// alloc takes an event node from the pool (or the allocator).
func (e *Engine) alloc(at time.Duration, seq uint64, lane int32, fn func()) *Event {
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		e.stats.PoolHits++
	} else {
		ev = &Event{eng: e}
		e.stats.PoolMisses++
	}
	ev.at, ev.seq, ev.lane, ev.fn = at, seq, lane, fn
	ev.state = evPending
	ev.cancelled = false
	return ev
}

// free recycles an event node. Engine context only: the generation bump is
// what invalidates outstanding Timer handles, and handles are read from
// lane goroutines.
func (e *Engine) free(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.state = evFree
	ev.cancelled = false
	if ev.emits != nil {
		ev.emits = ev.emits[:0]
	}
	e.pool = append(e.pool, ev)
}

// cancelEvent implements Timer.Cancel; see event.go for handle semantics.
func (e *Engine) cancelEvent(ev *Event) {
	w := e.win
	if w == nil {
		if ev.state != evPending {
			return
		}
		e.cal.remove(ev)
		e.free(ev)
		return
	}
	switch ev.state {
	case evPending:
		// A pre-window event still in a calendar shard. Only the owning
		// lane's execution can hold a handle to it during a window; the
		// node is recycled at the merge (frees are engine-context only).
		lc := w.lcs[ev.lane]
		if lc == nil {
			panic("sim: cancel of a non-participating lane's event during a parallel window")
		}
		e.cal.removeDeferred(ev)
		ev.state = evDone
		ev.fn = nil
		lc.recycle = append(lc.recycle, ev)
	case evWindow:
		lc := w.lcs[ev.lane]
		removeHeap(&lc.wheap, ev.index)
		ev.fn = nil
		if ev.seq&tentBit != 0 {
			// Window-born: it stays in its parent's emission list and
			// still consumes a sequence number at the merge, exactly as
			// a cancelled event consumed one at schedule time serially.
			ev.state = evEmitted
			ev.cancelled = true
		} else {
			ev.state = evDone
			lc.recycle = append(lc.recycle, ev)
		}
	case evEmitted:
		ev.cancelled = true
		ev.fn = nil
	}
}

// Spawn creates a task pinned to core and makes it runnable at the current
// virtual time. The body runs on a pooled runner goroutine under the
// engine's coroutine discipline.
func (e *Engine) Spawn(name string, core *Core, body func(*Env)) *Task {
	if e.win != nil {
		panic("sim: Spawn during a parallel window (spawn serially, e.g. before ParallelAfter)")
	}
	t := &Task{
		ID:    len(e.tasks),
		Name:  name,
		eng:   e,
		body:  body,
		state: TaskNew,
		core:  nil,
	}
	t.affinity = core
	e.tasks = append(e.tasks, t)
	e.liveTasks.Add(1)

	r := e.takeRunner()
	t.runner = r
	t.resume = r.resume
	t.yield = r.yield
	r.assign <- t

	t.state = TaskRunnable
	t.StartedAt = e.now
	t.waitStart = e.now
	e.sched.Enqueue(t)
	e.kickAfterWake(t)
	return t
}

// runner is a pooled task-frame: a goroutine plus its handoff channels,
// reused across task lifetimes so churny workloads do not pay a goroutine
// spawn (and leak a parked goroutine) per task.
type runner struct {
	assign chan *Task
	resume chan struct{}
	yield  chan struct{}
}

func (r *runner) loop() {
	for t := range r.assign {
		runTask(t)
	}
}

func runTask(t *Task) {
	// Wait for the first dispatch.
	<-t.resume
	defer func() {
		if rec := recover(); rec != nil {
			if rec != errAborted {
				panic(rec)
			}
			// Aborted by Engine.Shutdown: unwind quietly and return the
			// runner to its assign loop.
			t.yield <- struct{}{}
		}
	}()
	t.body(&Env{t: t})
	t.op = opDone
	t.yield <- struct{}{}
}

func (e *Engine) takeRunner() *runner {
	e.runnersMu.Lock()
	if n := len(e.freeRunners); n > 0 {
		r := e.freeRunners[n-1]
		e.freeRunners = e.freeRunners[:n-1]
		e.runnersMu.Unlock()
		return r
	}
	e.runnersMu.Unlock()
	r := &runner{
		assign: make(chan *Task),
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.allRunners = append(e.allRunners, r)
	go r.loop()
	return r
}

// releaseRunner returns a finished task's runner to the pool. Called from
// the dispatch path, which may be a lane goroutine, hence the mutex.
func (e *Engine) releaseRunner(r *runner) {
	e.runnersMu.Lock()
	e.freeRunners = append(e.freeRunners, r)
	e.runnersMu.Unlock()
}

var errAborted = fmt.Errorf("sim: task aborted")

// Wake makes a blocked task runnable, following the kernel wakeup model: the
// caller is responsible for charging ttwu cost (interrupt handlers do so via
// IRQCtx.Charge; tasks via Exec). Waking a non-blocked task is a no-op.
func (e *Engine) Wake(t *Task) {
	if t.state != TaskBlocked {
		return
	}
	t.state = TaskRunnable
	t.waitStart = t.affinity.now()
	e.sched.Enqueue(t)
	e.kickAfterWake(t)
}

// kickAfterWake triggers dispatch/preemption on the woken task's core.
func (e *Engine) kickAfterWake(t *Task) {
	c := t.affinity
	if c.current == t {
		panic("sim: woke the running task")
	}
	switch {
	case c.inIRQ || c.inTransition:
		// endIRQ / the transition completion performs the dispatch,
		// but the wakeup-preemption decision must be taken now.
		if c.current != nil && e.sched.ShouldPreempt(t, c) {
			c.needResched = true
		}
	case c.inBody:
		// The wake came from inside the running task's own body (the
		// only context that executes while inBody holds). The body
		// cannot be suspended mid-statement, so record the preemption
		// and honor it at the task's next park or scheduler tick.
		if e.sched.ShouldPreempt(t, c) {
			c.needResched = true
		}
	case c.current == nil:
		e.reschedule(c, true)
	case e.sched.ShouldPreempt(t, c):
		c.needResched = true
		c.kick()
	}
}

// Run drives the simulation until the event calendar empties or the given
// virtual-time horizon passes (0 means no horizon). It returns the final
// virtual time.
func (e *Engine) Run(until time.Duration) time.Duration {
	e.running = true
	for {
		ev := e.cal.peek()
		if ev == nil {
			break
		}
		if until > 0 && ev.at > until {
			e.now = until
			break
		}
		if e.parallelReady(ev.at) && e.runWindow(ev.at, until) {
			continue
		}
		ev = e.cal.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.stats.SerialEvents++
		// Recycle the node before running the callback: the handle
		// generation advances first, so any Timer operation the callback
		// performs on its own (already-fired) event is a correct no-op,
		// and the node is immediately reusable for what fn schedules.
		fn := ev.fn
		e.free(ev)
		fn()
	}
	// A bounded run always advances the clock to its horizon, so callers
	// polling in slices make progress even when the queue drains.
	if until > 0 && e.now < until {
		e.now = until
	}
	e.running = false
	return e.now
}

// LiveTasks returns the number of tasks not yet finished.
func (e *Engine) LiveTasks() int { return int(e.liveTasks.Load()) }

// Shutdown aborts all unfinished task goroutines and retires the runner
// pool so tests do not leak goroutines. The simulation must not be Run
// again afterwards.
func (e *Engine) Shutdown() {
	for _, t := range e.tasks {
		if t.state == TaskDone || t.state == TaskNew {
			continue
		}
		t.aborted = true
		t.resume <- struct{}{}
		<-t.yield
		t.state = TaskDone
	}
	for _, r := range e.allRunners {
		close(r.assign)
	}
	e.allRunners = nil
	e.freeRunners = nil
}

func (e *Engine) taskFinished(t *Task) {
	t.FinishedAt = t.affinity.now()
	e.liveTasks.Add(-1)
	if t.runner != nil {
		e.releaseRunner(t.runner)
		t.runner = nil
	}
}

// DebugCore renders a core's execution state (diagnostics).
func (e *Engine) DebugCore(c *Core) string {
	cur := "idle"
	op := "-"
	spin := "-"
	if c.current != nil {
		cur = c.current.Name
		op = fmt.Sprint(int(c.current.op))
		if c.current.spinOn != nil {
			spin = fmt.Sprint(c.current.spinOn.Done())
		}
	}
	return fmt.Sprintf("cur=%s op=%s spinDone=%s execEv=%v inIRQ=%v inTrans=%v pend=%d execRem=%v",
		cur, op, spin, c.execEv.Armed(), c.inIRQ, c.inTransition, len(c.pending), func() time.Duration {
			if c.current != nil {
				return c.current.execRem
			}
			return 0
		}())
}
