package sim

import "time"

// Event lifecycle states. Nodes cycle through the engine's free pool; the
// generation counter in Timer makes stale handles to recycled nodes inert.
const (
	evFree    uint8 = iota // in the free pool, awaiting reuse
	evPending              // queued in its lane's calendar shard
	evWindow               // detached into a lane's in-window heap
	evEmitted              // created during a parallel window, awaiting merge
	evDone                 // fired (or executed inside a window, pre-merge)
)

// tentBit marks a tentative (in-window, pre-merge) sequence number. Real
// sequence numbers stay far below it, so at equal timestamps every
// pre-window event orders before every window-born one — exactly the order
// a serial run produces, since window-born events would have been assigned
// larger sequence numbers there too.
const tentBit = uint64(1) << 63

// Event is a scheduled callback in virtual time. Events are ordered by time
// and, for equal times, by insertion sequence, which makes runs fully
// deterministic. Event nodes are pooled and recycled after firing; callers
// hold Timer handles, never *Event.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	eng       *Engine
	gen       uint64 // bumped on every recycle; Timer handles check it
	lane      int32  // the lane whose shard/window owns the event
	state     uint8
	cancelled bool // evEmitted only: cancelled before the merge
	index     int  // heap index in whichever heap holds the node

	// emits collects the events scheduled while this event executed inside
	// a parallel window, in program order; the merge replays them to assign
	// real sequence numbers.
	emits []*Event
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and unarmed. Handles are generation-checked: once the event fires
// (or is cancelled) its node may be recycled for an unrelated event, and
// the stale handle turns into a no-op instead of cancelling a stranger.
type Timer struct {
	ev  *Event
	gen uint64
}

// Armed reports whether the event is still scheduled to fire.
func (tm Timer) Armed() bool {
	ev := tm.ev
	if ev == nil || ev.gen != tm.gen {
		return false
	}
	switch ev.state {
	case evPending, evWindow:
		return true
	case evEmitted:
		return !ev.cancelled
	}
	return false
}

// Cancel prevents the event from firing. Cancelling an already-fired (or
// already-cancelled) event is a no-op. Unlike a lazy cancellation mark, the
// node is removed from its heap immediately, so re-arm loops (watchdogs,
// coalescing timers) cannot grow the queue without bound.
func (tm Timer) Cancel() {
	ev := tm.ev
	if ev == nil || ev.gen != tm.gen {
		return
	}
	ev.eng.cancelEvent(ev)
}

// At returns the virtual time the event is scheduled for (0 if the handle
// is stale or zero).
func (tm Timer) At() time.Duration {
	if tm.ev == nil || tm.ev.gen != tm.gen {
		return 0
	}
	return tm.ev.at
}

// eventHeap is a binary min-heap of events ordered by (at, seq). It backs
// every per-lane calendar shard, the in-window lane heaps, and the merge's
// replay heap.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
