package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback in virtual time. Events are ordered by time
// and, for equal times, by insertion sequence, which makes runs fully
// deterministic.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when popped
}

// Cancel prevents the event from firing. Cancelling an already-fired event
// is a no-op.
func (ev *Event) Cancel() {
	if ev != nil {
		ev.cancelled = true
	}
}

// Cancelled reports whether the event was cancelled.
func (ev *Event) Cancelled() bool { return ev != nil && ev.cancelled }

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() time.Duration { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *Event) { heap.Push(h, ev) }

func (h *eventHeap) pop() *Event {
	for h.Len() > 0 {
		ev := heap.Pop(h).(*Event)
		if !ev.cancelled {
			return ev
		}
	}
	return nil
}

func (h *eventHeap) peek() *Event {
	for h.Len() > 0 {
		ev := (*h)[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(h)
	}
	return nil
}
