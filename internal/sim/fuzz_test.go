package sim

import (
	"bytes"
	"testing"
	"time"
)

// fuzzRun interprets data as an op stream applied by a driver chain that
// fires once per microsecond: byte i is executed at virtual time i+1 µs.
// Each byte is op = b&3, arg = b>>2:
//
//	0: schedule a new timer at now + (arg%8) µs — 0 delta forces an
//	   equal-timestamp tie with everything else due this instant
//	1: cancel timer arg%len (no-op if already fired — the gen check)
//	2: re-arm timer arg&7: cancel, then schedule at now + ((arg>>3)&7) µs
//	3: idle step
//
// It returns the ids of the scheduled timers in firing order. Pooled nodes
// are recycled constantly (every fire and every cancel frees one), so any
// reuse bug that perturbed (at, seq) ordering shows up as a wrong sequence.
func fuzzRun(data []byte) []int {
	e := NewEngine(0, nil)
	var fired []int
	var timers []Timer
	var step func(i int)
	sched := func(id int, delay time.Duration) Timer {
		return e.Schedule(delay, func() { fired = append(fired, id) })
	}
	step = func(i int) {
		if i >= len(data) {
			return
		}
		b := data[i]
		arg := int(b >> 2)
		switch b & 3 {
		case 0:
			timers = append(timers, sched(len(timers), time.Duration(arg%8)*time.Microsecond))
		case 1:
			if len(timers) > 0 {
				timers[arg%len(timers)].Cancel()
			}
		case 2:
			if len(timers) > 0 {
				id := arg & 7 % len(timers)
				timers[id].Cancel()
				timers[id] = sched(id, time.Duration((arg>>3)&7)*time.Microsecond)
			}
		}
		e.Schedule(time.Microsecond, func() { step(i + 1) })
	}
	e.Schedule(time.Microsecond, func() { step(0) })
	e.Run(0)
	return fired
}

// fuzzModel predicts fuzzRun's firing order from first principles: every
// schedule is a (at, schedOrder, id) triple; a cancel succeeds iff the
// target is still strictly in the future; survivors fire sorted by (at,
// schedOrder) — the engine's (at, seq) contract.
func fuzzModel(data []byte) []int {
	type rec struct {
		at        time.Duration
		ord       int
		id        int
		cancelled bool
	}
	var recs []*rec
	live := map[int]*rec{} // id → latest arming
	ord := 0
	ids := 0
	now := time.Duration(0)
	sched := func(id int, delay time.Duration) {
		r := &rec{at: now + delay, ord: ord, id: id}
		ord++
		recs = append(recs, r)
		live[id] = r
	}
	cancel := func(id int) {
		if r := live[id]; r != nil && r.at > now {
			r.cancelled = true
		}
	}
	for i, b := range data {
		now = time.Duration(i+1) * time.Microsecond
		arg := int(b >> 2)
		switch b & 3 {
		case 0:
			sched(ids, time.Duration(arg%8)*time.Microsecond)
			ids++
		case 1:
			if ids > 0 {
				cancel(arg % ids)
			}
		case 2:
			if ids > 0 {
				id := arg & 7 % ids
				cancel(id)
				sched(id, time.Duration((arg>>3)&7)*time.Microsecond)
			}
		}
	}
	var out []int
	// Stable selection sort by (at, ord): small inputs, clarity over speed.
	for {
		var best *rec
		for _, r := range recs {
			if r.cancelled {
				continue
			}
			if best == nil || r.at < best.at || (r.at == best.at && r.ord < best.ord) {
				best = r
			}
		}
		if best == nil {
			return out
		}
		best.cancelled = true
		out = append(out, best.id)
	}
}

// FuzzEventOrder checks the engine's total event order against the model
// and its own replay: equal-timestamp tie-breaks, cancellation of the queue
// head, and pooled-event reuse must never change the firing sequence.
func FuzzEventOrder(f *testing.F) {
	// Watchdog shape: one timer re-armed every step.
	f.Add(bytes.Repeat([]byte{0 | 3<<2, 2 | 2<<5}, 20))
	// CQ-coalescing shape: arm a deadline, cancel it just before it fires,
	// arm the next.
	f.Add(bytes.Repeat([]byte{0 | 2<<2, 3, 1 | 0<<2}, 15))
	// Equal-timestamp burst: many zero-delta schedules in one step window.
	f.Add(bytes.Repeat([]byte{0}, 32))
	// Mixed ops with idle gaps.
	f.Add([]byte{0 | 5<<2, 3, 0 | 1<<2, 2 | 9<<2, 3, 1 | 1<<2, 0, 0 | 7<<2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		got := fuzzRun(data)
		want := fuzzModel(data)
		if len(got) != len(want) {
			t.Fatalf("fired %d timers, model says %d\n got %v\nwant %v", len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("firing %d = timer %d, model says %d\n got %v\nwant %v", i, got[i], want[i], got, want)
			}
		}
		again := fuzzRun(data)
		if len(again) != len(got) {
			t.Fatalf("replay fired %d, first run %d", len(again), len(got))
		}
		for i := range got {
			if again[i] != got[i] {
				t.Fatalf("replay diverges at firing %d: %d vs %d", i, again[i], got[i])
			}
		}
	})
}
