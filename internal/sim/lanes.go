package sim

import (
	"container/heap"
	"sync"
	"time"
)

// Conservative parallel lanes.
//
// A lane is a group of cores (usually one) plus the calendar shard holding
// their events. Cross-lane interaction in this stack flows exclusively
// through scheduled events with a minimum latency (netsim links): an event
// executing at time t can only affect another lane at t + Lookahead or
// later. So all events in [base, end) with end <= base + Lookahead are
// mutually independent across lanes and may execute concurrently — the
// classic conservative-PDES window.
//
// Determinism is preserved by construction, not by luck:
//
//   - Each lane executes its own window events in (at, seq) order on a
//     private clock; window-born same-lane events join the lane's heap
//     with tentative sequence numbers (tentBit|counter) that order after
//     every real sequence number at equal timestamps — the same relative
//     order a serial run produces, since serially they would have been
//     assigned larger sequence numbers too.
//   - Emissions are buffered per executed event. The merge replays the
//     executed events in global (at, seq) order and hands out real
//     sequence numbers to their emissions in program order — exactly the
//     order the serial engine would have assigned them. Cancelled
//     window-born events still consume a number, as they would have
//     serially.
//   - Cross-lane emissions inside the window, unattributed engine calls,
//     and Spawn during a window all panic: each would be an interaction
//     the lookahead bound promised could not happen.
//
// Lane 0 (the engine lane: unattributed events, harness timers) is never
// parallelized; windows are capped at its next event.

// window is one parallel execution window.
type window struct {
	end time.Duration
	lcs []*laneCtx // indexed by lane id; nil for non-participants
}

// laneCtx is one lane's execution state inside a window. It is written by
// exactly one lane goroutine between the start barrier and the join; the
// engine reads it only after the join.
type laneCtx struct {
	lane int32
	now  time.Duration // lane-local clock
	end  time.Duration

	wheap eventHeap // this lane's window events, (at, seq)-ordered
	cur   *Event    // event currently executing (emission buffer target)
	tent  uint64    // tentative sequence counter

	done    []*Event // executed events, in execution order
	recycle []*Event // cancelled nodes to recycle at the merge

	panicv any // recovered panic, re-raised by the engine after the join
}

func pushHeap(h *eventHeap, ev *Event) { heap.Push(h, ev) }
func removeHeap(h *eventHeap, i int)   { heap.Remove(h, i) }

// parallelReady reports whether the engine may open a parallel window for
// an event at time at.
func (e *Engine) parallelReady(at time.Duration) bool {
	cfg := &e.Config
	return cfg.ParallelLanes &&
		cfg.Lookahead > 0 &&
		e.Tracer == nil &&
		len(e.cal.shards) > 1 &&
		at >= cfg.ParallelAfter
}

// runWindow plans and executes one parallel window starting at base.
// It returns false (having changed nothing) when fewer than two lanes
// would participate; the caller falls back to the serial path.
func (e *Engine) runWindow(base, until time.Duration) bool {
	end := base + e.Config.Lookahead
	if until > 0 && end > until+1 {
		// Events at exactly the horizon must still run; past it they must
		// not. Virtual time is integer nanoseconds, so until+1 is tight.
		end = until + 1
	}
	// The engine lane executes serially: cap the window at its next event.
	if s0 := e.cal.shards[0]; len(s0.h) > 0 && s0.h[0].at < end {
		end = s0.h[0].at
	}
	if end <= base {
		return false
	}
	participants := 0
	for _, s := range e.cal.shards[1:] {
		if len(s.h) > 0 && s.h[0].at < end {
			participants++
		}
	}
	if participants < 2 {
		return false
	}

	// Detach each participating lane's window events from its shard. The
	// top index goes stale here; it is rebuilt wholesale at the merge.
	w := &window{end: end, lcs: make([]*laneCtx, len(e.cal.shards))}
	var parts []*laneCtx
	for _, s := range e.cal.shards[1:] {
		if len(s.h) == 0 || s.h[0].at >= end {
			continue
		}
		lc := &laneCtx{lane: int32(s.id), now: e.now, end: end}
		for len(s.h) > 0 && s.h[0].at < end {
			ev := heap.Pop(&s.h).(*Event)
			ev.state = evWindow
			heap.Push(&lc.wheap, ev)
		}
		w.lcs[s.id] = lc
		parts = append(parts, lc)
	}

	e.win = w
	var wg sync.WaitGroup
	for _, lc := range parts {
		wg.Add(1)
		go func(lc *laneCtx) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					lc.panicv = r
				}
			}()
			lc.run()
		}(lc)
	}
	wg.Wait()
	e.win = nil

	e.merge(parts)
	return true
}

// run executes the lane's window events in (at, seq) order. It runs on a
// dedicated goroutine; everything it touches transitively (its shard, its
// cores, their tasks and runqueues) belongs to this lane for the duration.
func (lc *laneCtx) run() {
	for len(lc.wheap) > 0 {
		ev := heap.Pop(&lc.wheap).(*Event)
		if ev.at < lc.now {
			panic("sim: time went backwards in lane")
		}
		lc.now = ev.at
		ev.state = evDone
		fn := ev.fn
		ev.fn = nil
		lc.cur = ev
		fn()
		lc.cur = nil
		lc.done = append(lc.done, ev)
	}
}

// merge folds a finished window back into serial state: advance the global
// clock, rebuild the calendar's top index, replay the executed events in
// serial order to hand out real sequence numbers to their emissions, and
// recycle every retired node.
func (e *Engine) merge(parts []*laneCtx) {
	for _, lc := range parts {
		if lc.panicv != nil {
			panic(lc.panicv)
		}
	}
	for _, lc := range parts {
		if lc.now > e.now {
			e.now = lc.now
		}
	}
	// Detachment and deferred cancels left multiple shard heads changed;
	// heap.Fix is only sound for one violation, so rebuild from scratch.
	e.cal.rebuildTop()

	// Replay. Seed the ready heap with the executed events that already
	// carry real sequence numbers (the pre-window detachments); executed
	// window-born events become ready the moment their parent's replay
	// assigns their number. Popping (at, seq)-minimum then reproduces the
	// serial execution order, so e.seq++ hands out exactly the numbers a
	// serial run would have.
	var ready eventHeap
	total := 0
	for _, lc := range parts {
		total += len(lc.done)
		for _, ev := range lc.done {
			if ev.seq&tentBit == 0 {
				heap.Push(&ready, ev)
			}
		}
	}
	processed := 0
	for len(ready) > 0 {
		p := heap.Pop(&ready).(*Event)
		processed++
		for _, em := range p.emits {
			e.seq++
			em.seq = e.seq
			switch {
			case em.state == evDone:
				heap.Push(&ready, em)
			case em.cancelled:
				e.free(em)
			default:
				// A live emission beyond the window (or cross-lane):
				// becomes an ordinary pending event.
				em.state = evPending
				e.cal.push(em)
			}
		}
		e.free(p)
	}
	if processed != total {
		panic("sim: lane merge lost executed events")
	}
	for _, lc := range parts {
		for _, ev := range lc.recycle {
			e.free(ev)
		}
	}
	e.stats.Windows++
	e.stats.WindowEvents += uint64(total)
}
