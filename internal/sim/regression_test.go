package sim_test

import (
	"testing"
	"time"

	"aeolia/internal/sched"
	"aeolia/internal/sim"
	"aeolia/internal/timing"
)

// TestResumeHookRunsForPreemptedSpinner is the regression test for the
// mid-spin delivery deadlock: a task preempted while spinning on a
// completion must still receive its inserted handler frame (which fires the
// completion) when it is switched back in — otherwise it spins forever.
func TestResumeHookRunsForPreemptedSpinner(t *testing.T) {
	e := sim.NewEngine(1, sched.NewEEVDF())
	defer e.Shutdown()

	comp := sim.NewCompletion()
	var spinnerDone time.Duration
	spinner := e.Spawn("spinner", e.Core(0), func(env *sim.Env) {
		env.Exec(time.Microsecond)
		env.SpinWait(comp)
		spinnerDone = env.Now()
	})
	// A competitor that wakes with a sleeper bonus, preempting the
	// spinner.
	e.Spawn("competitor", e.Core(0), func(env *sim.Env) {
		for i := 0; i < 3; i++ {
			env.Sleep(100 * time.Microsecond)
			env.Exec(500 * time.Microsecond)
		}
	})
	// While the spinner is off-CPU, its "completion interrupt" arrives as
	// an inserted frame.
	e.Schedule(150*time.Microsecond, func() {
		if spinner.State() == sim.TaskRunnable {
			spinner.PushResumeHook(func() time.Duration {
				comp.Fire()
				return timing.HandlerExec
			})
		} else {
			// Fallback: fire directly if it happened to be on-CPU.
			comp.Fire()
		}
	})
	e.Run(50 * time.Millisecond)
	if spinnerDone == 0 {
		t.Fatalf("spinner never resumed; state=%v", spinner.State())
	}
	if spinnerDone > 10*time.Millisecond {
		t.Fatalf("spinner resumed only at %v", spinnerDone)
	}
}

// TestHookFiringCompletionChargesOnce: a resume hook that fires the very
// completion its task spins on must not double-resume the task (the
// hook-transition reentrancy bug).
func TestHookFiringCompletionChargesOnce(t *testing.T) {
	e := sim.NewEngine(1, sched.NewEEVDF())
	defer e.Shutdown()
	comp := sim.NewCompletion()
	resumed := 0
	sp := e.Spawn("spinner", e.Core(0), func(env *sim.Env) {
		env.SpinWait(comp)
		resumed++
		env.Exec(time.Microsecond)
	})
	// Preempt the spinner with a short-lived task, then push the hook and
	// let the spinner get rescheduled.
	e.Spawn("blip", e.Core(0), func(env *sim.Env) {
		env.Sleep(50 * time.Microsecond)
		sp.PushResumeHook(func() time.Duration {
			comp.Fire()
			return timing.HandlerExec
		})
		env.Exec(100 * time.Microsecond)
	})
	e.Run(50 * time.Millisecond)
	if resumed != 1 {
		t.Fatalf("spinner body resumed %d times, want 1", resumed)
	}
}

// TestWakePreemptionFromISR: a wake performed inside an interrupt handler
// must still take the wakeup-preemption decision (regression for the lost
// needResched).
func TestWakePreemptionFromISR(t *testing.T) {
	e := sim.NewEngine(1, sched.NewEEVDF())
	defer e.Shutdown()
	core := e.Core(0)
	var woken *sim.Task
	core.SetIRQHandler(func(ctx *sim.IRQCtx, vec int) {
		ctx.Charge(timing.KernelInterrupt)
		ctx.Engine().Wake(woken)
	})
	e.Spawn("hog", e.Core(0), func(env *sim.Env) {
		env.Exec(time.Second)
	})
	var resumedAt time.Duration
	woken = e.Spawn("lc", e.Core(0), func(env *sim.Env) {
		env.Exec(time.Microsecond)
		env.Block()
		resumedAt = env.Now()
	})
	e.Schedule(10*time.Millisecond, func() { core.RaiseIRQ(0x40) })
	e.Run(100 * time.Millisecond)
	if resumedAt == 0 {
		t.Fatal("lc never resumed")
	}
	// With wakeup preemption the LC must run within microseconds of the
	// IRQ, not wait out the hog's slice.
	if resumedAt > 10*time.Millisecond+100*time.Microsecond {
		t.Fatalf("lc resumed at %v; wakeup preemption from ISR broken", resumedAt)
	}
}

// TestRWMutexReadersShareWritersExclude exercises the virtual RW lock.
func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	e := sim.NewEngine(4, sched.NewEEVDF())
	defer e.Shutdown()
	var rw sim.RWMutex
	var concurrentReaders, maxReaders, writers int
	for i := 0; i < 3; i++ {
		e.Spawn("reader", e.Core(i), func(env *sim.Env) {
			rw.RLock(env)
			concurrentReaders++
			if concurrentReaders > maxReaders {
				maxReaders = concurrentReaders
			}
			env.Exec(100 * time.Microsecond)
			concurrentReaders--
			rw.RUnlock(env)
		})
	}
	e.Spawn("writer", e.Core(3), func(env *sim.Env) {
		env.Exec(10 * time.Microsecond) // arrive after readers
		rw.Lock(env)
		if concurrentReaders != 0 {
			t.Errorf("writer ran with %d readers inside", concurrentReaders)
		}
		writers++
		env.Exec(50 * time.Microsecond)
		rw.Unlock(env)
	})
	e.Run(0)
	if maxReaders < 2 {
		t.Fatalf("maxReaders = %d, want >= 2 (readers must overlap)", maxReaders)
	}
	if writers != 1 {
		t.Fatalf("writer ran %d times", writers)
	}
}

// TestBarrierReleasesAllTogether exercises the setup/measure barrier.
func TestBarrierReleasesAllTogether(t *testing.T) {
	e := sim.NewEngine(4, sched.NewEEVDF())
	defer e.Shutdown()
	b := sim.NewBarrier(4)
	var releases []time.Duration
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("w", e.Core(i), func(env *sim.Env) {
			env.Exec(time.Duration(i+1) * 100 * time.Microsecond)
			b.Wait(env)
			releases = append(releases, env.Now())
		})
	}
	e.Run(0)
	if len(releases) != 4 {
		t.Fatalf("released %d, want 4", len(releases))
	}
	// Everyone leaves at (or just after, for dispatch) the last arrival.
	for _, r := range releases {
		if r < 400*time.Microsecond || r > 405*time.Microsecond {
			t.Fatalf("release at %v, want ~400µs", r)
		}
	}
}
