package sim_test

import (
	"testing"
	"time"

	"aeolia/internal/sched"
	"aeolia/internal/sim"
	"aeolia/internal/timing"
)

func newEngine(t *testing.T, cores int) *sim.Engine {
	t.Helper()
	e := sim.NewEngine(cores, sched.NewEEVDF())
	t.Cleanup(e.Shutdown)
	return e
}

// startup is the cost of the first dispatch from idle: every spawned task
// pays idle-exit + context-switch before its body runs.
const startup = timing.IdleExit + timing.ContextSwitch

func TestExecConsumesVirtualTime(t *testing.T) {
	e := newEngine(t, 1)
	var done time.Duration
	e.Spawn("worker", e.Core(0), func(env *sim.Env) {
		env.Exec(10 * time.Microsecond)
		env.Exec(5 * time.Microsecond)
		done = env.Now()
	})
	e.Run(0)
	if done != 15*time.Microsecond+startup {
		t.Fatalf("done at %v, want 15µs+startup", done)
	}
}

func TestScheduleOrderingDeterministic(t *testing.T) {
	e := sim.NewEngine(0, nil)
	var order []int
	e.Schedule(2*time.Microsecond, func() { order = append(order, 2) })
	e.Schedule(time.Microsecond, func() { order = append(order, 1) })
	e.Schedule(time.Microsecond, func() { order = append(order, 3) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("order = %v, want [1 3 2]", order)
	}
}

func TestEventCancel(t *testing.T) {
	e := sim.NewEngine(0, nil)
	fired := false
	ev := e.Schedule(time.Microsecond, func() { fired = true })
	ev.Cancel()
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunHorizonStopsClock(t *testing.T) {
	e := sim.NewEngine(0, nil)
	e.Schedule(10*time.Millisecond, func() {})
	end := e.Run(time.Millisecond)
	if end != time.Millisecond {
		t.Fatalf("end = %v, want 1ms", end)
	}
}

func TestBlockAndWakePaysSchedulingCosts(t *testing.T) {
	e := newEngine(t, 1)
	var resumed time.Duration
	tk := e.Spawn("sleeper", e.Core(0), func(env *sim.Env) {
		env.Exec(time.Microsecond)
		env.Block()
		resumed = env.Now()
	})
	// Wake from a bare event at t=50µs: the task must additionally pay
	// idle-exit + context-switch before running.
	e.Schedule(50*time.Microsecond, func() { e.Wake(tk) })
	e.Run(0)
	want := 50*time.Microsecond + timing.IdleExit + timing.ContextSwitch
	if resumed != want {
		t.Fatalf("resumed at %v, want %v", resumed, want)
	}
}

func TestSleepWakesAfterDuration(t *testing.T) {
	e := newEngine(t, 1)
	var resumed time.Duration
	e.Spawn("sleeper", e.Core(0), func(env *sim.Env) {
		env.Sleep(100 * time.Microsecond)
		resumed = env.Now()
	})
	e.Run(0)
	want := startup + 100*time.Microsecond + timing.IdleExit + timing.ContextSwitch
	if resumed != want {
		t.Fatalf("resumed at %v, want %v", resumed, want)
	}
}

func TestSpinWaitResumesInstantlyOnFire(t *testing.T) {
	e := newEngine(t, 1)
	comp := sim.NewCompletion()
	var resumed time.Duration
	e.Spawn("poller", e.Core(0), func(env *sim.Env) {
		env.SpinWait(comp)
		resumed = env.Now()
	})
	e.Schedule(30*time.Microsecond, func() { comp.Fire() })
	e.Run(0)
	if resumed != 30*time.Microsecond {
		t.Fatalf("resumed at %v, want 30µs (no scheduler cost for polling)", resumed)
	}
}

func TestSpinWaitConsumesCPU(t *testing.T) {
	e := newEngine(t, 1)
	comp := sim.NewCompletion()
	tk := e.Spawn("poller", e.Core(0), func(env *sim.Env) {
		env.SpinWait(comp)
	})
	e.Schedule(30*time.Microsecond, func() { comp.Fire() })
	e.Run(0)
	if tk.CPUTime != 30*time.Microsecond-startup {
		t.Fatalf("CPUTime = %v, want 30µs-startup", tk.CPUTime)
	}
}

func TestIRQChargesCostAndResumesTask(t *testing.T) {
	e := newEngine(t, 1)
	core := e.Core(0)
	var handled time.Duration
	core.SetIRQHandler(func(ctx *sim.IRQCtx, vec int) {
		ctx.Charge(timing.KernelInterrupt)
		handled = ctx.Now()
	})
	var finished time.Duration
	e.Spawn("worker", e.Core(0), func(env *sim.Env) {
		env.Exec(100 * time.Microsecond)
		finished = env.Now()
	})
	e.Schedule(40*time.Microsecond, func() { core.RaiseIRQ(7) })
	e.Run(0)
	if handled != 40*time.Microsecond {
		t.Fatalf("IRQ handled at %v, want 40µs", handled)
	}
	want := startup + 100*time.Microsecond + timing.KernelInterrupt
	if finished != want {
		t.Fatalf("task finished at %v, want %v (exec stretched by ISR)", finished, want)
	}
}

func TestIRQWhileIdle(t *testing.T) {
	e := newEngine(t, 1)
	core := e.Core(0)
	fired := false
	core.SetIRQHandler(func(ctx *sim.IRQCtx, vec int) {
		fired = true
		if vec != 13 {
			t.Errorf("vec = %d, want 13", vec)
		}
	})
	e.Schedule(time.Millisecond, func() { core.RaiseIRQ(13) })
	e.Run(0)
	if !fired {
		t.Fatal("IRQ not delivered to idle core")
	}
}

func TestTwoTasksShareCoreFairly(t *testing.T) {
	e := newEngine(t, 1)
	var doneA, doneB time.Duration
	e.Spawn("A", e.Core(0), func(env *sim.Env) {
		for i := 0; i < 10; i++ {
			env.Exec(10 * time.Millisecond)
		}
		doneA = env.Now()
	})
	e.Spawn("B", e.Core(0), func(env *sim.Env) {
		for i := 0; i < 10; i++ {
			env.Exec(10 * time.Millisecond)
		}
		doneB = env.Now()
	})
	e.Run(0)
	if doneA == 0 || doneB == 0 {
		t.Fatal("tasks did not finish")
	}
	// 200ms of combined work on one core: both should finish close to
	// 200ms — interleaved, not serialized (A then B would put A at 100ms).
	total := 200 * time.Millisecond
	if doneA < 150*time.Millisecond || doneB < 150*time.Millisecond {
		t.Fatalf("doneA=%v doneB=%v: tasks ran serially, want interleaving", doneA, doneB)
	}
	if doneA > total+10*time.Millisecond || doneB > total+10*time.Millisecond {
		t.Fatalf("doneA=%v doneB=%v exceed total+slack", doneA, doneB)
	}
}

func TestWakeupPreemptionByEarlierDeadline(t *testing.T) {
	e := newEngine(t, 1)
	var preempted bool
	hog := e.Spawn("hog", e.Core(0), func(env *sim.Env) {
		env.Exec(time.Second)
	})
	_ = hog
	lc := e.Spawn("lc", e.Core(0), func(env *sim.Env) {
		// Sleep long enough to accumulate lag, then run briefly: on
		// wake EEVDF should preempt the hog whose deadline is far out.
		env.Sleep(500 * time.Millisecond)
		preempted = env.Now() < 600*time.Millisecond
		env.Exec(time.Microsecond)
	})
	_ = lc
	e.Run(0)
	if !preempted {
		t.Fatal("woken task did not run promptly; wakeup preemption broken")
	}
}

func TestYieldSwitchesTasks(t *testing.T) {
	e := newEngine(t, 1)
	var order []string
	e.Spawn("A", e.Core(0), func(env *sim.Env) {
		order = append(order, "A1")
		env.Yield()
		order = append(order, "A2")
	})
	e.Spawn("B", e.Core(0), func(env *sim.Env) {
		order = append(order, "B1")
	})
	e.Run(0)
	if len(order) != 3 || order[0] != "A1" || order[1] != "B1" || order[2] != "A2" {
		t.Fatalf("order = %v, want [A1 B1 A2]", order)
	}
}

func TestResumeHookRunsBeforeBody(t *testing.T) {
	e := newEngine(t, 1)
	var hookAt, bodyAt time.Duration
	tk := e.Spawn("t", e.Core(0), func(env *sim.Env) {
		env.Block()
		bodyAt = env.Now()
	})
	e.Schedule(10*time.Microsecond, func() {
		tk.PushResumeHook(func() time.Duration {
			hookAt = e.Now()
			return timing.UserInterrupt
		})
		e.Wake(tk)
	})
	e.Run(0)
	if hookAt == 0 || bodyAt == 0 {
		t.Fatal("hook or body did not run")
	}
	if bodyAt-hookAt != timing.UserInterrupt {
		t.Fatalf("body resumed %v after hook, want %v", bodyAt-hookAt, timing.UserInterrupt)
	}
}

func TestTaskCPUTimeAccounting(t *testing.T) {
	e := newEngine(t, 1)
	tk := e.Spawn("w", e.Core(0), func(env *sim.Env) {
		env.Exec(7 * time.Microsecond)
		env.Sleep(100 * time.Microsecond)
		env.Exec(3 * time.Microsecond)
	})
	e.Run(0)
	if tk.CPUTime != 10*time.Microsecond {
		t.Fatalf("CPUTime = %v, want 10µs", tk.CPUTime)
	}
	if tk.State() != sim.TaskDone {
		t.Fatalf("state = %v, want done", tk.State())
	}
}

func TestIdleAccounting(t *testing.T) {
	e := newEngine(t, 1)
	e.Spawn("w", e.Core(0), func(env *sim.Env) {
		env.Sleep(time.Millisecond)
	})
	e.Run(0)
	if e.Core(0).IdleTime < 900*time.Microsecond {
		t.Fatalf("IdleTime = %v, want ~1ms", e.Core(0).IdleTime)
	}
}

func TestMultiCoreIndependence(t *testing.T) {
	e := newEngine(t, 2)
	var done0, done1 time.Duration
	e.Spawn("c0", e.Core(0), func(env *sim.Env) {
		env.Exec(10 * time.Millisecond)
		done0 = env.Now()
	})
	e.Spawn("c1", e.Core(1), func(env *sim.Env) {
		env.Exec(10 * time.Millisecond)
		done1 = env.Now()
	})
	e.Run(0)
	if done0 != 10*time.Millisecond+startup || done1 != 10*time.Millisecond+startup {
		t.Fatalf("done0=%v done1=%v, want both 10ms+startup (parallel cores)", done0, done1)
	}
}

func TestUserTryYieldAloneKeepsCore(t *testing.T) {
	snap := sched.Snapshot{NrRunning: 1}
	if sched.UserTryYield(snap, 0) {
		t.Fatal("yielded with no competitor")
	}
}

func TestUserTryYieldWithLaggingCandidate(t *testing.T) {
	snap := sched.Snapshot{
		NrRunning:     2,
		CurrVruntime:  10 * time.Millisecond,
		CurrDeadline:  13 * time.Millisecond,
		CurrExecStart: 0,
		CurrWeight:    sched.NiceZeroWeight,
		CurrSlice:     3 * time.Millisecond,
		CandDeadline:  5 * time.Millisecond,
		HasCandidate:  true,
	}
	if !sched.UserTryYield(snap, 20*time.Millisecond) {
		t.Fatal("did not yield to candidate with much earlier deadline")
	}
}

func TestCompletionFireIsIdempotent(t *testing.T) {
	c := sim.NewCompletion()
	n := 0
	c.OnFire(func() { n++ })
	c.Fire()
	c.Fire()
	if n != 1 {
		t.Fatalf("OnFire ran %d times, want 1", n)
	}
	ran := false
	c.OnFire(func() { ran = true })
	if !ran {
		t.Fatal("OnFire after completion should run immediately")
	}
}
