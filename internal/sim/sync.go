package sim

// Virtual-time synchronization primitives. Tasks that contend for these
// block in *virtual* time, so lock contention — the mechanism behind every
// multicore-scalability result in the paper — is measured by the simulation
// rather than scripted. All primitives are engine-single-threaded: they must
// only be used from task bodies and engine callbacks.
//
// Sleeps here are interruptible, like the kernel's TASK_INTERRUPTIBLE: a
// kernel-path notification (Engine.Wake from an interrupt-delivery fallback)
// may resume a task whose condition has not been granted yet. Every wait
// therefore re-checks its condition and re-blocks on a spurious resume;
// grants always update the primitive's state before waking, so the check is
// race-free under the single-threaded engine.

// Mutex is a virtual-time mutual exclusion lock with FIFO handoff.
type Mutex struct {
	owner   *Task
	waiters []*Task
	// Contended counts acquisitions that had to wait.
	Contended uint64
	// Acquired counts total acquisitions.
	Acquired uint64
}

// Lock acquires m, blocking the calling task in virtual time if needed.
func (m *Mutex) Lock(env *Env) {
	t := env.Task()
	m.Acquired++
	if m.owner == nil {
		m.owner = t
		return
	}
	if m.owner == t {
		panic("sim: recursive Mutex.Lock")
	}
	m.Contended++
	m.waiters = append(m.waiters, t)
	for m.owner != t {
		env.Block()
	}
}

// TryLock acquires m if it is free.
func (m *Mutex) TryLock(env *Env) bool {
	if m.owner != nil {
		return false
	}
	m.Acquired++
	m.owner = env.Task()
	return true
}

// Unlock releases m, handing it to the longest-waiting task if any.
func (m *Mutex) Unlock(env *Env) {
	if m.owner != env.Task() {
		panic("sim: unlock of mutex not owned by caller")
	}
	m.unlock(env.Engine())
}

func (m *Mutex) unlock(e *Engine) {
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	e.Wake(next)
}

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// RWMutex is a virtual-time readers-writer lock. Writers take priority over
// newly arriving readers once queued (no writer starvation).
type RWMutex struct {
	readers     int
	writer      *Task
	waitWriters []*Task
	waitReaders []*rwWaiter
	// Contended counts acquisitions that had to wait.
	Contended uint64
	// Acquired counts total acquisitions (read and write).
	Acquired uint64
}

// RLock acquires a read lock.
func (rw *RWMutex) RLock(env *Env) {
	rw.Acquired++
	if rw.writer == nil && len(rw.waitWriters) == 0 {
		rw.readers++
		return
	}
	rw.Contended++
	w := &rwWaiter{task: env.Task()}
	rw.waitReaders = append(rw.waitReaders, w)
	for !w.granted {
		env.Block()
	}
}

// rwWaiter is one parked reader; granted flips (with readers++) before the
// wake, so a spuriously resumed reader can tell a grant from an interrupt.
type rwWaiter struct {
	task    *Task
	granted bool
}

// RUnlock releases a read lock.
func (rw *RWMutex) RUnlock(env *Env) {
	if rw.readers <= 0 {
		panic("sim: RUnlock without readers")
	}
	rw.readers--
	rw.dispatch(env.Engine())
}

// Lock acquires the write lock.
func (rw *RWMutex) Lock(env *Env) {
	rw.Acquired++
	if rw.writer == nil && rw.readers == 0 {
		rw.writer = env.Task()
		return
	}
	rw.Contended++
	t := env.Task()
	rw.waitWriters = append(rw.waitWriters, t)
	for rw.writer != t {
		env.Block()
	}
}

// Unlock releases the write lock.
func (rw *RWMutex) Unlock(env *Env) {
	if rw.writer != env.Task() {
		panic("sim: unlock of rwmutex not write-held by caller")
	}
	rw.writer = nil
	rw.dispatch(env.Engine())
}

func (rw *RWMutex) dispatch(e *Engine) {
	if rw.writer != nil {
		return
	}
	if rw.readers == 0 && len(rw.waitWriters) > 0 {
		next := rw.waitWriters[0]
		rw.waitWriters = rw.waitWriters[1:]
		rw.writer = next
		e.Wake(next)
		return
	}
	if len(rw.waitWriters) == 0 {
		for _, w := range rw.waitReaders {
			rw.readers++
			w.granted = true
			e.Wake(w.task)
		}
		rw.waitReaders = nil
	}
}

// WaitQueue parks tasks until broadcast or signalled, like a kernel wait
// queue. Unlike Completion it is reusable.
type WaitQueue struct {
	waiters []*Task
}

// Wait parks the calling task on the queue. The sleep is interruptible: a
// kernel-path notification may resume the task before Signal/Broadcast, in
// which case Wait returns with the task removed from the queue. Callers
// must re-check their condition in a loop (they all do — that is the wait
// queue contract).
func (wq *WaitQueue) Wait(env *Env) {
	t := env.Task()
	wq.waiters = append(wq.waiters, t)
	env.Block()
	for i, w := range wq.waiters {
		if w == t {
			wq.waiters = append(wq.waiters[:i], wq.waiters[i+1:]...)
			break
		}
	}
}

// Signal wakes the longest-waiting task, if any, and reports whether one
// was woken.
func (wq *WaitQueue) Signal(e *Engine) bool {
	if len(wq.waiters) == 0 {
		return false
	}
	t := wq.waiters[0]
	wq.waiters = wq.waiters[1:]
	e.Wake(t)
	return true
}

// Broadcast wakes all waiting tasks.
func (wq *WaitQueue) Broadcast(e *Engine) {
	for _, t := range wq.waiters {
		e.Wake(t)
	}
	wq.waiters = nil
}

// Len returns the number of parked tasks.
func (wq *WaitQueue) Len() int { return len(wq.waiters) }

// Barrier blocks tasks until n of them arrive, then releases all — used to
// separate benchmark setup from the measured phase.
type Barrier struct {
	n       int
	arrived int
	gen     int
	wq      WaitQueue
}

// NewBarrier returns a barrier for n tasks.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait parks the calling task until all n participants have arrived. The
// generation counter keeps a spuriously resumed participant parked until
// the release actually happens.
func (b *Barrier) Wait(env *Env) {
	b.arrived++
	if b.arrived >= b.n {
		b.gen++
		b.wq.Broadcast(env.Engine())
		return
	}
	for gen := b.gen; gen == b.gen; {
		b.wq.Wait(env)
	}
}
