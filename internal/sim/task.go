package sim

import (
	"fmt"
	"time"
)

// TaskState describes where a task is in its lifecycle.
type TaskState int

const (
	// TaskNew tasks have been created but not yet started.
	TaskNew TaskState = iota
	// TaskRunnable tasks are in a runqueue waiting for a core.
	TaskRunnable
	// TaskRunning tasks are current on a core (possibly mid-Exec or
	// spinning).
	TaskRunning
	// TaskBlocked tasks are off the runqueue waiting for a Wake.
	TaskBlocked
	// TaskDone tasks have returned from their body.
	TaskDone
)

func (s TaskState) String() string {
	switch s {
	case TaskNew:
		return "new"
	case TaskRunnable:
		return "runnable"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	case TaskDone:
		return "done"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// taskOp is the request a task coroutine hands to the engine when it parks.
type taskOp int

const (
	opNone  taskOp = iota
	opExec         // consume execRem of CPU time
	opBlock        // leave the CPU until woken
	opSpin         // busy-wait on a Completion, consuming CPU time
	opYield        // sched_yield: requeue and reschedule
	opDone         // task body returned
)

// Task is a simulated thread. Its body runs on a dedicated goroutine, but
// the engine and all task bodies are mutually exclusive: exactly one of them
// executes at any instant, handing control back and forth through unbuffered
// channels, so the simulation is deterministic and data-race free by
// construction.
type Task struct {
	ID   int
	Name string

	eng   *Engine
	body  func(*Env)
	state TaskState

	// resume hands control to the task goroutine; yield hands it back.
	resume chan struct{}
	yield  chan struct{}

	// op and its operands, valid while parked.
	op      taskOp
	execRem time.Duration
	spinOn  *Completion

	// core the task is current on (nil unless TaskRunning).
	core *Core
	// affinity is the core whose runqueue the task belongs to; tasks are
	// pinned for the lifetime of the simulation.
	affinity *Core
	// runner is the pooled goroutine executing the body; it is released
	// back to the engine's pool when the task finishes.
	runner *runner
	// aborted is set by Engine.Shutdown to unwind the goroutine.
	aborted bool

	// onResume runs on the task's virtual CPU right before the task body
	// continues — used to inject a userspace interrupt-handler frame for
	// out-of-schedule user interrupts (§6.1). It may charge time via the
	// returned duration.
	onResume []func() time.Duration

	// Sched is scheduler-private per-task state (e.g. the EEVDF entity).
	Sched any

	// UserData is model-private state (e.g. the uintr per-thread vector).
	UserData any

	// Stats.
	StartedAt  time.Duration
	FinishedAt time.Duration
	CPUTime    time.Duration // virtual CPU consumed by Exec/Spin
	waitStart  time.Duration
}

// State returns the task's lifecycle state.
func (t *Task) State() TaskState { return t.state }

// Core returns the core the task is currently running on, or nil.
func (t *Task) Core() *Core { return t.core }

// Engine returns the owning engine.
func (t *Task) Engine() *Engine { return t.eng }

// PushResumeHook queues fn to run (on the task's virtual CPU) immediately
// before the task body next continues. Hooks run in FIFO order and their
// returned durations are charged as CPU time.
func (t *Task) PushResumeHook(fn func() time.Duration) {
	t.onResume = append(t.onResume, fn)
}

func (t *Task) String() string {
	return fmt.Sprintf("task(%d:%s)", t.ID, t.Name)
}

// Affinity returns the core this task is pinned to.
func (t *Task) Affinity() *Core { return t.affinity }

// park transfers control from the task goroutine back to the engine and
// waits until the engine resumes this task.
func (t *Task) park() {
	t.yield <- struct{}{}
	<-t.resume
	if t.aborted {
		panic(errAborted)
	}
}

// Env is the API a task body uses to interact with virtual time and the
// scheduler. It is only valid on the task's own goroutine.
type Env struct {
	t *Task
}

// Now returns the current virtual time as observed on the task's core.
func (e *Env) Now() time.Duration { return e.t.affinity.now() }

// Schedule enqueues fn on the task's core after delay of virtual time.
func (e *Env) Schedule(delay time.Duration, fn func()) Timer {
	return e.t.affinity.Schedule(delay, fn)
}

// ScheduleAt enqueues fn on the task's core at absolute virtual time at.
func (e *Env) ScheduleAt(at time.Duration, fn func()) Timer {
	return e.t.affinity.ScheduleAt(at, fn)
}

// Task returns the task this environment belongs to.
func (e *Env) Task() *Task { return e.t }

// Engine returns the owning engine.
func (e *Env) Engine() *Engine { return e.t.eng }

// Exec consumes d of CPU time on the current core. The task may be
// interrupted and preempted while executing; Exec returns once the full
// duration has been consumed.
func (e *Env) Exec(d time.Duration) {
	if d <= 0 {
		return
	}
	t := e.t
	t.op = opExec
	t.execRem = d
	t.park()
	t.runResumeHooks()
}

// Block removes the task from the CPU until another context calls
// Wake. The engine charges context-switch costs per the kernel model.
func (e *Env) Block() {
	t := e.t
	t.op = opBlock
	t.park()
	t.runResumeHooks()
}

// SpinWait busy-waits until c completes, consuming CPU the whole time. The
// task remains runnable and can be preempted at scheduler ticks; it resumes
// spinning when rescheduled. This is the polling completion model.
func (e *Env) SpinWait(c *Completion) {
	t := e.t
	if c.Done() {
		return
	}
	t.op = opSpin
	t.spinOn = c
	t.park()
	t.runResumeHooks()
}

// Yield voluntarily releases the CPU (sched_yield).
func (e *Env) Yield() {
	t := e.t
	t.op = opYield
	t.park()
	t.runResumeHooks()
}

// Sleep blocks the task for d of virtual time.
func (e *Env) Sleep(d time.Duration) {
	t := e.t
	t.affinity.Schedule(d, func() { t.eng.Wake(t) })
	e.Block()
}

// BlockOn blocks the task until c fires. The context that fires the
// completion is responsible for charging the wakeup (ttwu) cost.
func (e *Env) BlockOn(c *Completion) {
	if c.Done() {
		return
	}
	t := e.t
	c.OnFire(func() { t.eng.Wake(t) })
	e.Block()
}

func (t *Task) runResumeHooks() {
	for len(t.onResume) > 0 {
		fn := t.onResume[0]
		t.onResume = t.onResume[1:]
		cost := fn()
		if cost > 0 {
			t.op = opExec
			t.execRem = cost
			t.park()
		}
	}
}

// Completion is a one-shot condition that tasks can poll (SpinWait) or that
// interrupt handlers can complete. It also records completion time.
type Completion struct {
	done   bool
	at     time.Duration
	onFire []func()
}

// NewCompletion returns an unfired completion.
func NewCompletion() *Completion { return &Completion{} }

// Done reports whether the completion has fired.
func (c *Completion) Done() bool { return c.done }

// At returns the virtual time the completion fired (zero if pending).
func (c *Completion) At() time.Duration { return c.at }

// OnFire registers a callback invoked when the completion fires. If the
// completion already fired the callback runs immediately.
func (c *Completion) OnFire(fn func()) {
	if c.done {
		fn()
		return
	}
	c.onFire = append(c.onFire, fn)
}

// Fire marks the completion done and runs registered callbacks. Firing an
// already-done completion is a no-op.
func (c *Completion) Fire() { c.FireAt(0) }

// FireAt is Fire with an explicit completion timestamp for statistics.
func (c *Completion) FireAt(now time.Duration) {
	if c.done {
		return
	}
	c.done = true
	c.at = now
	for _, fn := range c.onFire {
		fn()
	}
	c.onFire = nil
}
