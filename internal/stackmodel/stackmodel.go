// Package stackmodel implements the storage stacks Aeolia is evaluated
// against (§2, §9): the POSIX synchronous path, io_uring in its default
// (interrupt), poll, and active-checking-optimized (iou_opt) setups, and an
// SPDK-style polling userspace driver. Each is a calibrated execution-path
// model over the shared NVMe device and the simulated kernel: real queue
// pairs, real interrupts, real scheduler interaction — with per-layer
// software costs taken from the paper's breakdowns (Figures 2-4).
package stackmodel

import (
	"errors"
	"fmt"
	"time"

	"aeolia/internal/aeokern"
	"aeolia/internal/nvme"
	"aeolia/internal/sim"
	"aeolia/internal/timing"
)

// ErrNoThread is returned when a task performs I/O before Prepare.
var ErrNoThread = errors.New("stackmodel: task not prepared (no queue pair)")

// CompletionKind is how a stack learns of I/O completion.
type CompletionKind int

// Completion kinds.
const (
	// CompletionPoll busy-polls the completion queue from the issuing
	// thread.
	CompletionPoll CompletionKind = iota
	// CompletionIntr uses a (kernel) interrupt.
	CompletionIntr
)

// Profile parameterizes a stack model.
type Profile struct {
	Name string
	// SubmitExtra is charged on submission in addition to the userspace
	// driver's SubmitCost: syscall entry, io_uring SQE handling, block
	// layer, NVMe driver.
	SubmitExtra time.Duration
	// CompleteExtra is charged on the completion path in task context
	// (syscall return, copy bookkeeping).
	CompleteExtra time.Duration
	// Completion selects poll vs. interrupt.
	Completion CompletionKind
	// EagerSleep makes the thread sleep immediately after submission
	// (the Figure 4 pathology). Without it the stack applies the active
	// checking policy: sleep only when another task is runnable.
	EagerSleep bool
	// ISRCost is the kernel interrupt-context cost (interrupt mechanism
	// + bottom half).
	ISRCost time.Duration
}

// The evaluated baseline profiles.
var (
	// POSIX is the synchronous read/write path (pread/pwrite with
	// O_DIRECT): one full syscall per I/O, interrupt completion, eager
	// sleep.
	POSIX = Profile{
		Name:          "posix",
		SubmitExtra:   timing.POSIXSyscall,
		CompleteExtra: 0,
		Completion:    CompletionIntr,
		EagerSleep:    true,
		ISRCost:       timing.KernelInterrupt + timing.KernelBottomHalf,
	}
	// IOUDfl is io_uring's default setup: interrupts + the kernel's
	// eager-sleep scheduling policy (Figure 2's iou_dfl, 8.2µs).
	IOUDfl = Profile{
		Name:        "iou_dfl",
		SubmitExtra: timing.KernelSubmit,
		Completion:  CompletionIntr,
		EagerSleep:  true,
		ISRCost:     timing.KernelInterrupt + timing.KernelBottomHalf,
	}
	// IOUPoll is io_uring with IORING_SETUP_IOPOLL (Figure 2's iou_poll,
	// 5.4µs).
	IOUPoll = Profile{
		Name:        "iou_poll",
		SubmitExtra: timing.KernelSubmit,
		Completion:  CompletionPoll,
	}
	// IOUOpt is io_uring with the paper's active checking policy
	// (Figure 2's iou_opt, 6.3µs).
	IOUOpt = Profile{
		Name:        "iou_opt",
		SubmitExtra: timing.KernelSubmit,
		Completion:  CompletionIntr,
		EagerSleep:  false,
		ISRCost:     timing.KernelInterrupt + timing.KernelBottomHalf,
	}
	// SPDK is the polling userspace driver (Figure 2, 4.2µs).
	SPDK = Profile{
		Name:       "spdk",
		Completion: CompletionPoll,
	}
)

// Request is an in-flight I/O of a stack model.
type Request struct {
	op     nvme.Opcode
	done   *sim.Completion
	cqe    *sim.Completion
	status nvme.Status
	start  time.Duration
}

// Err returns the completion status as an error.
func (r *Request) Err() error { return r.status.Err() }

// Latency returns submission-to-handled latency (valid after Wait).
func (r *Request) Latency(now time.Duration) time.Duration { return now - r.start }

// Stack is an instantiated stack model over a machine's device and kernel.
type Stack struct {
	prof Profile
	kern *aeokern.Kernel
	dev  *nvme.Device

	threads map[*sim.Task]*thread

	// Reads/Writes count completed operations.
	Reads, Writes uint64
}

type thread struct {
	st      *Stack
	task    *sim.Task
	qp      *nvme.QueuePair
	vector  int
	pending map[uint16]*Request

	sleeps uint64
	spins  uint64
}

// New instantiates a stack model.
func New(kern *aeokern.Kernel, prof Profile) *Stack {
	return &Stack{
		prof:    prof,
		kern:    kern,
		dev:     kern.Device(),
		threads: make(map[*sim.Task]*thread),
	}
}

// Name returns the profile name.
func (s *Stack) Name() string { return s.prof.Name }

// Profile returns the stack's profile.
func (s *Stack) Profile() Profile { return s.prof }

// Prepare allocates the calling task's queue pair (all modeled stacks use
// per-thread/per-core NVMe queues, as modern Linux and SPDK do).
func (s *Stack) Prepare(env *sim.Env, depth int) error {
	t := env.Task()
	if _, ok := s.threads[t]; ok {
		return nil
	}
	qp, err := s.dev.CreateQueuePair(depth)
	if err != nil {
		return err
	}
	th := &thread{st: s, task: t, qp: qp, pending: make(map[uint16]*Request)}
	if s.prof.Completion == CompletionIntr {
		vec, err := s.kern.AllocVector(th.isr)
		if err != nil {
			return err
		}
		th.vector = vec
		qp.Vector = vec
		core := t.Affinity()
		qp.OnCompletion = func(q *nvme.QueuePair) { core.RaiseIRQ(vec) }
	}
	s.threads[t] = th
	return nil
}

// Read performs a synchronous read of cnt blocks at lba.
func (s *Stack) Read(env *sim.Env, lba uint64, cnt uint32, buf []byte) error {
	req, err := s.Submit(env, nvme.OpRead, lba, cnt, buf)
	if err != nil {
		return err
	}
	return s.Wait(env, req)
}

// Write performs a synchronous write.
func (s *Stack) Write(env *sim.Env, lba uint64, cnt uint32, buf []byte) error {
	req, err := s.Submit(env, nvme.OpWrite, lba, cnt, buf)
	if err != nil {
		return err
	}
	return s.Wait(env, req)
}

// Submit issues an asynchronous request, charging the stack's submission
// path.
func (s *Stack) Submit(env *sim.Env, op nvme.Opcode, lba uint64, cnt uint32, buf []byte) (*Request, error) {
	th, ok := s.threads[env.Task()]
	if !ok {
		return nil, ErrNoThread
	}
	env.Exec(timing.SubmitCost + s.prof.SubmitExtra)
	req := &Request{op: op, done: sim.NewCompletion(), start: env.Now()}
	cqe, err := th.qp.Submit(nvme.SubmissionEntry{Opcode: op, SLBA: lba, NLB: cnt, Data: buf})
	if err != nil {
		return nil, fmt.Errorf("stackmodel %s: %w", s.prof.Name, err)
	}
	req.cqe = cqe
	th.pending[th.qp.LastCID()] = req
	return req, nil
}

// Wait completes a request per the stack's completion kind and scheduling
// policy.
func (s *Stack) Wait(env *sim.Env, req *Request) error {
	th, ok := s.threads[env.Task()]
	if !ok {
		return ErrNoThread
	}
	for !req.done.Done() {
		switch {
		case s.prof.Completion == CompletionPoll:
			th.spins++
			env.SpinWait(req.cqe)
			th.drain(env.Now())
		case s.prof.EagerSleep || s.othersRunnable(env):
			// Sleep; the ISR wakes us (Figure 4 path when the
			// core then idles).
			th.sleeps++
			env.BlockOn(req.done)
		default:
			// Active checking: stay on the CPU until the ISR
			// handles the completion.
			th.spins++
			env.SpinWait(req.done)
		}
	}
	env.Exec(timing.CompleteCost + s.prof.CompleteExtra)
	return req.Err()
}

func (s *Stack) othersRunnable(env *sim.Env) bool {
	c := env.Task().Core()
	if c == nil {
		return false
	}
	return s.kern.Sched().NrRunnable(c) > 0
}

// drain consumes CQEs in task context (polling stacks).
func (th *thread) drain(now time.Duration) {
	for _, ce := range th.qp.Poll(0) {
		req := th.pending[ce.CID]
		if req == nil {
			continue
		}
		delete(th.pending, ce.CID)
		req.status = ce.Status
		req.done.FireAt(now)
		if req.op == nvme.OpWrite {
			th.st.Writes++
		} else {
			th.st.Reads++
		}
	}
}

// isr is the kernel interrupt handler for this thread's vector.
func (th *thread) isr(ctx *sim.IRQCtx, vec int) {
	ctx.Charge(th.st.prof.ISRCost)
	t := th.task
	if t.State() == sim.TaskRunning {
		// Active-checking thread is on the CPU: the bottom half
		// completes the request; the thread resumes at ISR end.
		th.drain(ctx.Now())
		return
	}
	// Sleeping (or preempted) thread: complete in the bottom half, then
	// wake it, paying ttwu. Capture the state first — draining fires the
	// completion whose wake hook transitions the task to runnable.
	wasBlocked := t.State() == sim.TaskBlocked
	th.drain(ctx.Now())
	if wasBlocked {
		ctx.Charge(timing.WakeupTTWU)
		ctx.Engine().Wake(t)
	}
}
