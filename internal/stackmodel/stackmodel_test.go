package stackmodel_test

import (
	"testing"
	"time"

	"aeolia/internal/machine"
	"aeolia/internal/nvme"
	"aeolia/internal/sim"
	"aeolia/internal/stackmodel"
)

// measure4K returns the steady-state single-task 4KB read latency of a
// stack profile.
func measure4K(t *testing.T, prof stackmodel.Profile) time.Duration {
	t.Helper()
	m := machine.New(1, nvme.Config{BlockSize: 4096, NumBlocks: 1 << 16})
	defer m.Eng.Shutdown()
	st := stackmodel.New(m.Kern, prof)
	var avg time.Duration
	m.Eng.Spawn("fio", m.Eng.Core(0), func(env *sim.Env) {
		if err := st.Prepare(env, 64); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		st.Read(env, 0, 1, buf) // warm-up
		start := env.Now()
		const n = 20
		for i := 0; i < n; i++ {
			if err := st.Read(env, uint64(i), 1, buf); err != nil {
				t.Error(err)
				return
			}
		}
		avg = (env.Now() - start) / n
	})
	m.Run(0)
	return avg
}

// TestFigure2Calibration verifies that the modeled stacks land on the
// paper's Figure 2 latencies for a single-task 4KB read.
func TestFigure2Calibration(t *testing.T) {
	cases := []struct {
		prof     stackmodel.Profile
		lo, hi   time.Duration
		paperVal string
	}{
		{stackmodel.SPDK, 4000 * time.Nanosecond, 4400 * time.Nanosecond, "4.2µs"},
		{stackmodel.IOUPoll, 5200 * time.Nanosecond, 5600 * time.Nanosecond, "5.4µs"},
		{stackmodel.IOUOpt, 6100 * time.Nanosecond, 6500 * time.Nanosecond, "6.3µs"},
		{stackmodel.IOUDfl, 7800 * time.Nanosecond, 8600 * time.Nanosecond, "8.2µs"},
		{stackmodel.POSIX, 8700 * time.Nanosecond, 10500 * time.Nanosecond, "~2x AeoDriver"},
	}
	for _, c := range cases {
		got := measure4K(t, c.prof)
		if got < c.lo || got > c.hi {
			t.Errorf("%s 4KB read = %v, want in [%v, %v] (paper: %s)",
				c.prof.Name, got, c.lo, c.hi, c.paperVal)
		} else {
			t.Logf("%s: %v (paper %s)", c.prof.Name, got, c.paperVal)
		}
	}
}

// TestOrderingAcrossStacks pins the relative ordering the paper's analysis
// establishes: SPDK < iou_poll < iou_opt < iou_dfl < POSIX.
func TestOrderingAcrossStacks(t *testing.T) {
	spdk := measure4K(t, stackmodel.SPDK)
	poll := measure4K(t, stackmodel.IOUPoll)
	opt := measure4K(t, stackmodel.IOUOpt)
	dfl := measure4K(t, stackmodel.IOUDfl)
	posix := measure4K(t, stackmodel.POSIX)
	if !(spdk < poll && poll < opt && opt < dfl && dfl < posix) {
		t.Fatalf("ordering violated: spdk=%v poll=%v opt=%v dfl=%v posix=%v",
			spdk, poll, opt, dfl, posix)
	}
}

// TestPollingStarvesComputeTask reproduces Figure 5a's mechanism: a polling
// I/O task and a compute task sharing a core leaves the compute task far
// less CPU than an interrupt-based (eager-sleep) I/O task does.
func TestPollingStarvesComputeTask(t *testing.T) {
	computeWork := func(prof stackmodel.Profile) time.Duration {
		m := machine.New(1, nvme.Config{BlockSize: 4096, NumBlocks: 1 << 20})
		defer m.Eng.Shutdown()
		st := stackmodel.New(m.Kern, prof)
		horizon := 200 * time.Millisecond
		var compute *sim.Task
		m.Eng.Spawn("io", m.Eng.Core(0), func(env *sim.Env) {
			st.Prepare(env, 64)
			buf := make([]byte, 128*1024)
			for env.Now() < horizon {
				if err := st.Read(env, 0, 32, buf); err != nil {
					t.Error(err)
					return
				}
			}
		})
		compute = m.Eng.Spawn("swaptions", m.Eng.Core(0), func(env *sim.Env) {
			for env.Now() < horizon {
				env.Exec(100 * time.Microsecond)
			}
		})
		m.Run(horizon)
		return compute.CPUTime
	}
	pollCPU := computeWork(stackmodel.SPDK)
	intrCPU := computeWork(stackmodel.IOUDfl)
	if intrCPU <= pollCPU {
		t.Fatalf("compute CPU under interrupt stack (%v) should exceed polling stack (%v)",
			intrCPU, pollCPU)
	}
	// The interrupt stack should leave the compute task a large majority
	// of the cycles the I/O task spends waiting.
	if float64(intrCPU) < 1.3*float64(pollCPU) {
		t.Fatalf("interrupt benefit too small: %v vs %v", intrCPU, pollCPU)
	}
}

// TestPollingTailLatencyWithTwoIOTasks reproduces Figure 5b's mechanism:
// two polling I/O tasks on one core suffer multi-millisecond tail latency
// (a task is preempted right after issuing and waits out time slices),
// while two interrupt-based tasks do not.
func TestPollingTailLatencyWithTwoIOTasks(t *testing.T) {
	maxLat := func(prof stackmodel.Profile) time.Duration {
		m := machine.New(1, nvme.Config{BlockSize: 4096, NumBlocks: 1 << 20})
		defer m.Eng.Shutdown()
		st := stackmodel.New(m.Kern, prof)
		horizon := 300 * time.Millisecond
		var worst time.Duration
		for i := 0; i < 2; i++ {
			m.Eng.Spawn("io", m.Eng.Core(0), func(env *sim.Env) {
				st.Prepare(env, 64)
				buf := make([]byte, 4096)
				for env.Now() < horizon {
					start := env.Now()
					if err := st.Read(env, 0, 1, buf); err != nil {
						t.Error(err)
						return
					}
					if lat := env.Now() - start; lat > worst {
						worst = lat
					}
				}
			})
		}
		m.Run(horizon)
		return worst
	}
	pollWorst := maxLat(stackmodel.SPDK)
	intrWorst := maxLat(stackmodel.IOUOpt)
	if pollWorst < time.Millisecond {
		t.Fatalf("polling tail = %v, expected multi-ms (slice-wait pathology)", pollWorst)
	}
	if intrWorst >= pollWorst/10 {
		t.Fatalf("interrupt tail (%v) should be >=10x better than polling (%v)", intrWorst, pollWorst)
	}
}
