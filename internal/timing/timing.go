// Package timing centralizes the calibrated cost model of the simulated
// testbed.
//
// Every constant below is taken from a number the Aeolia paper reports for
// its 128-core Xeon Platinum 8592 + Optane P5800X testbed, or derived from
// one by subtraction (the derivations are noted inline). All experiments run
// on virtual time, so these constants fully determine the simulated stacks'
// software paths; the device model in internal/nvme supplies the hardware
// side.
package timing

import "time"

// CPUGHz is the modeled core frequency used to convert the paper's
// cycle-denominated costs (WRPKRU 48 cycles, trusted-entry 85 cycles) into
// nanoseconds. 2.0 GHz approximates a Xeon Platinum 8592 without turbo
// (turbo is disabled in the paper's setup).
const CPUGHz = 2.0

// Cycles converts a cycle count into a duration at CPUGHz.
func Cycles(n int) time.Duration {
	return time.Duration(float64(n) / CPUGHz * float64(time.Nanosecond))
}

// Costs reported directly by the paper.
const (
	// UserInterrupt is the cost of delivering and handling one user
	// interrupt ("as fast as a regular interrupt, costing 0.6µs on our
	// machine", §4.1).
	UserInterrupt = 600 * time.Nanosecond

	// KernelInterrupt is the cost of a regular kernel interrupt
	// (Figure 3: "the interrupt mechanism itself incurs only 0.6µs").
	KernelInterrupt = 600 * time.Nanosecond

	// KernelBottomHalf is the kernel's post-interrupt completion work on
	// the io_uring path (footnote 2: "the remaining 0.3µs is due to kernel
	// scheduling bottom-half operations"; Figure 3 attributes ~0.4µs to
	// "different code execution paths"). We charge it on every kernel
	// interrupt completion.
	KernelBottomHalf = 300 * time.Nanosecond

	// WakeupTTWU is step ① of Figure 4: converting a sleeping task to
	// runnable costs 0.7µs.
	WakeupTTWU = 700 * time.Nanosecond

	// IdleExit is step ② of Figure 4: updating scheduling statistics
	// before leaving the idle task costs 0.4µs.
	IdleExit = 400 * time.Nanosecond

	// ContextSwitch is step ③ of Figure 4: scheduling and context
	// switching back to the woken task costs 0.7µs.
	ContextSwitch = 700 * time.Nanosecond

	// IPC is the per-crossing cost of application↔uFS communication
	// ("IPC still incurs excessive software overhead (e.g., 400ns)", §1).
	IPC = 400 * time.Nanosecond

	// TrustedEntry is the cost of entering an Aeolia trusted entity
	// ("Entering a trusted entity only requires 40ns", §3.3).
	TrustedEntry = 40 * time.Nanosecond
)

// TrustedSwitch is the per-operation toll of the eager integrity check's
// domain switch ("each operation pays an extra 85 cycles to switch to the
// trusted entity", §1/§7.3).
var TrustedSwitch = Cycles(85)

// WRPKRU is the cost of one protection-key register write ("around 48
// cycles on our machine", §5).
var WRPKRU = Cycles(48)

// Derived software-path costs. These are fixed by the single-task 4KB read
// latencies of Figure 2 (iou_dfl 8.2µs, iou_opt 6.3µs, iou_poll 5.4µs,
// AeoDriver 4.8µs, SPDK 4.2µs) once the device model (see nvme) and the
// direct costs above are pinned:
//
//	SPDK    = dev(4K) + SPDKSoftware                         = 4.2µs
//	AeoDrv  = dev(4K) + SPDKSoftware + UserInterrupt         = 4.8µs
//	iouPoll = dev(4K) + SPDKSoftware + KernelSubmit          = 5.4µs
//	iouOpt  = iouPoll + KernelInterrupt + KernelBottomHalf   = 6.3µs
//	iouDfl  = iouOpt  + WakeupTTWU + IdleExit + ContextSwitch = 8.1µs (paper: 8.2µs)
const (
	// SPDKSoftware is the userspace submit+complete software cost of a
	// polling direct-access driver (ring manipulation, PRP setup,
	// completion parsing).
	SPDKSoftware = 650 * time.Nanosecond

	// KernelSubmit is the extra kernel-side submission cost of io_uring
	// over a direct userspace driver: syscall entry/exit, io_uring SQE
	// handling, the block layer, and the NVMe driver.
	KernelSubmit = 1200 * time.Nanosecond

	// POSIXSyscall is the extra per-call cost of the synchronous POSIX
	// read/write path over io_uring: one full syscall per I/O plus VFS
	// and page-cache-bypass (O_DIRECT) bookkeeping. Chosen so that POSIX
	// hits ~2x AeoDriver latency at 512B (Figure 10).
	POSIXSyscall = 2600 * time.Nanosecond

	// IOUringSubmitSyscall is the amortizable io_uring_enter cost.
	IOUringSubmitSyscall = 900 * time.Nanosecond

	// EventfdForward is the cost of forwarding a kernel interrupt to a
	// userspace waiter via eventfd, used by the +k_intr ablation in
	// Figure 17 (cf. LibPreemptible's report cited in §9.4).
	EventfdForward = 2100 * time.Nanosecond

	// SubmitCost and CompleteCost split SPDKSoftware into the
	// submission-side (PRP setup, SQE write, doorbell) and
	// completion-side (CQE parse, head doorbell) halves.
	SubmitCost   = 400 * time.Nanosecond
	CompleteCost = 250 * time.Nanosecond

	// SQEPrep and DoorbellWrite split SubmitCost into the per-command
	// half (PRP setup + SQE write) and the per-doorbell half (the MMIO
	// write, serializing on the uncore). SQEPrep + DoorbellWrite ==
	// SubmitCost, so a batch of N commands behind one doorbell costs
	// N*SQEPrep + DoorbellWrite instead of N*SubmitCost.
	SQEPrep       = 250 * time.Nanosecond
	DoorbellWrite = 150 * time.Nanosecond

	// HandlerExec is the execution cost of a userspace interrupt handler
	// body when it runs as an inserted stack frame (§6.1) — the delivery
	// half of UserInterrupt is avoided in that path.
	HandlerExec = 150 * time.Nanosecond

	// RingPrep and RingComplete are the per-command software costs of the
	// zero-copy ring datapath. RingPrep replaces SQEPrep when a command is
	// staged through a per-core single-producer ring whose slots carry
	// pre-registered pooled buffers: no per-command PRP list is built (the
	// buffer's DMA mapping is set up once at pool registration) and the SQE
	// lands in a pre-mapped slot with one cache-line write plus the atomic
	// index publication — the dominant SQEPrep costs (PRP setup, bounds
	// re-validation) disappear. RingComplete replaces CompleteCost on the
	// same path: completions are consumed from the lock-free CQ ring by
	// phase-bit inspection, the head index is published with one atomic
	// store, and the per-command head-doorbell MMIO is batched away, leaving
	// CQE parse + status propagation. Both remain strictly positive — the
	// ring does not make command handling free, it strips the per-command
	// setup the batched path still pays. TestRingPathCheaperIdentity pins
	// RingPrep < SQEPrep and RingComplete < CompleteCost.
	RingPrep     = 80 * time.Nanosecond
	RingComplete = 100 * time.Nanosecond
)

// SchedTick is the scheduler tick period (CONFIG_HZ=250 on the paper's
// Ubuntu kernel).
const SchedTick = 4 * time.Millisecond

// TimeSlice is the EEVDF base slice used by both the kernel model and the
// sched_ext policy (Linux base_slice_ns default ~2.8ms; we use 3ms).
const TimeSlice = 3 * time.Millisecond
