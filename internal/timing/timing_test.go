package timing

import (
	"testing"
	"time"
)

func TestCycles(t *testing.T) {
	// 2.0 GHz: one cycle is 0.5ns.
	if got := Cycles(2); got != time.Nanosecond {
		t.Fatalf("Cycles(2) = %v, want 1ns", got)
	}
	if WRPKRU != Cycles(48) {
		t.Fatalf("WRPKRU = %v", WRPKRU)
	}
	if TrustedSwitch != Cycles(85) {
		t.Fatalf("TrustedSwitch = %v", TrustedSwitch)
	}
}

// TestFigure2Arithmetic pins the derivations documented on the constants:
// the stack latencies of Figure 2 must still sum from the parts.
func TestFigure2Arithmetic(t *testing.T) {
	dev := 3550 * time.Nanosecond // P5800X 4KB read, see internal/nvme
	spdk := dev + SPDKSoftware
	if spdk < 4150*time.Nanosecond || spdk > 4250*time.Nanosecond {
		t.Fatalf("SPDK sum = %v, want ~4.2µs", spdk)
	}
	iouPoll := spdk + KernelSubmit
	if iouPoll < 5350*time.Nanosecond || iouPoll > 5450*time.Nanosecond {
		t.Fatalf("iou_poll sum = %v, want ~5.4µs", iouPoll)
	}
	iouOpt := iouPoll + KernelInterrupt + KernelBottomHalf
	if iouOpt < 6250*time.Nanosecond || iouOpt > 6350*time.Nanosecond {
		t.Fatalf("iou_opt sum = %v, want ~6.3µs", iouOpt)
	}
	sched := WakeupTTWU + IdleExit + ContextSwitch
	if sched != 1800*time.Nanosecond {
		t.Fatalf("scheduling overhead = %v, want 1.8µs", sched)
	}
	iouDfl := iouOpt + sched
	if iouDfl < 8000*time.Nanosecond || iouDfl > 8250*time.Nanosecond {
		t.Fatalf("iou_dfl sum = %v, want ~8.1µs", iouDfl)
	}
	if SubmitCost+CompleteCost != SPDKSoftware {
		t.Fatalf("submit+complete (%v) must equal SPDKSoftware (%v)",
			SubmitCost+CompleteCost, SPDKSoftware)
	}
}

// TestSubmitSplitIdentity pins the batching decomposition used by the trace
// stage model: SQEPrep + DoorbellWrite must equal SubmitCost exactly, so a
// batch of N commands behind one doorbell costs N*SQEPrep + DoorbellWrite
// and the unbatched path is the N=1 special case.
func TestSubmitSplitIdentity(t *testing.T) {
	if SQEPrep+DoorbellWrite != SubmitCost {
		t.Fatalf("SQEPrep (%v) + DoorbellWrite (%v) = %v, must equal SubmitCost (%v)",
			SQEPrep, DoorbellWrite, SQEPrep+DoorbellWrite, SubmitCost)
	}
	if SQEPrep <= 0 || DoorbellWrite <= 0 {
		t.Fatal("both submit components must be positive")
	}
	// The batched path must actually be cheaper for every N > 1.
	for _, n := range []int{2, 8, 32} {
		batched := time.Duration(n)*SQEPrep + DoorbellWrite
		unbatched := time.Duration(n) * SubmitCost
		if batched >= unbatched {
			t.Errorf("batch of %d costs %v, not cheaper than %v unbatched", n, batched, unbatched)
		}
	}
}

// TestRingPathCheaperIdentity pins the zero-copy ring decomposition: the
// ring's per-command costs must stay strictly positive (staging a command
// and parsing a completion are never free) and strictly below the batched
// path's per-command halves (the ring exists to strip per-command PRP setup
// and the head-doorbell MMIO, not to add a third cost tier above them).
func TestRingPathCheaperIdentity(t *testing.T) {
	if RingPrep <= 0 || RingComplete <= 0 {
		t.Fatal("both ring components must be positive")
	}
	if RingPrep >= SQEPrep {
		t.Fatalf("RingPrep (%v) must be below SQEPrep (%v)", RingPrep, SQEPrep)
	}
	if RingComplete >= CompleteCost {
		t.Fatalf("RingComplete (%v) must be below CompleteCost (%v)", RingComplete, CompleteCost)
	}
	// A ring batch of N commands behind one doorbell must beat the batched
	// SQE path for every N, including N=1.
	for _, n := range []int{1, 2, 8, 32} {
		ring := time.Duration(n)*(RingPrep+RingComplete) + DoorbellWrite
		batched := time.Duration(n)*(SQEPrep+CompleteCost) + DoorbellWrite
		if ring >= batched {
			t.Errorf("ring batch of %d costs %v, not cheaper than %v batched", n, ring, batched)
		}
	}
}
