package trace

import (
	"fmt"
	"time"

	"aeolia/internal/report"
)

// Chain is the reconstructed life of one command (qid, cid): the per-stage
// timestamps the Analyzer extracted from the event stream. A stage that
// never happened is left at -1.
type Chain struct {
	QID int32
	CID uint32
	LBA uint64

	Prep        time.Duration // SQEPrep
	Doorbell    time.Duration // DoorbellWrite covering this command
	DeviceStart time.Duration
	DeviceDone  time.Duration
	Post        time.Duration // CQEPost
	Consume     time.Duration // CQEConsume

	// InHandler is true when the consume happened inside a
	// HandlerEnter/HandlerExit bracket (user-interrupt or kernel-path
	// delivery), as opposed to a synchronous poll or watchdog reap.
	InHandler bool
}

const noStage = time.Duration(-1)

// Complete reports whether every stage from prep through consume was
// observed, in causal order.
func (c *Chain) Complete() bool {
	return c.Prep >= 0 && c.Doorbell >= 0 && c.DeviceStart >= 0 &&
		c.DeviceDone >= 0 && c.Post >= 0 && c.Consume >= 0 &&
		c.Prep <= c.Doorbell && c.Doorbell <= c.DeviceStart &&
		c.DeviceStart <= c.DeviceDone && c.DeviceDone <= c.Post &&
		c.Post <= c.Consume
}

// Delivered reports whether the chain is complete AND its completion was
// consumed from inside an interrupt-delivery handler bracket — the full
// doorbell → device → CQE → post → deliver → handler path.
func (c *Chain) Delivered() bool { return c.Complete() && c.InHandler }

// SvcChain is the reconstructed life of one storage-service request
// (connection id, request id): received off the wire, admitted (or shed),
// executed against the file system, replied. A stage that never happened is
// left at -1.
type SvcChain struct {
	Conn int32  // connection id (netsim source endpoint)
	Req  uint32 // per-connection request id
	Op   uint64 // wire opcode (from SvcReqRecv's Aux)

	Recv  time.Duration // SvcReqRecv
	Admit time.Duration // SvcAdmit
	FSOp  time.Duration // SvcFSOp
	Reply time.Duration // SvcReply

	// Shed is true when admission control rejected the request; a shed
	// chain is complete with only Recv and Reply.
	Shed bool
}

// Complete reports whether the request's full causal chain was observed in
// order: recv → admit → fs-op → reply for admitted requests, recv → reply
// for shed ones.
func (c *SvcChain) Complete() bool {
	if c.Shed {
		return c.Recv >= 0 && c.Reply >= 0 && c.Recv <= c.Reply
	}
	return c.Recv >= 0 && c.Admit >= 0 && c.FSOp >= 0 && c.Reply >= 0 &&
		c.Recv <= c.Admit && c.Admit <= c.FSOp && c.FSOp <= c.Reply
}

// Violation is one invariant breach found in a trace.
type Violation struct {
	Seq  uint64 // offending event
	Rule string // e.g. "doorbell-before-device"
	Msg  string
}

func (v Violation) String() string { return fmt.Sprintf("seq=%d %s: %s", v.Seq, v.Rule, v.Msg) }

// Analyzer replays an event stream (in Seq order) and reconstructs causal
// state: per-command chains, per-queue held aggregations, handler nesting,
// journal write/commit ordering. The simulation engine serializes all
// emitting contexts, so a single global replay is sound.
type Analyzer struct {
	Chains     map[[2]int64]*Chain    // keyed by {qid, cid}
	SvcChains  map[[2]int64]*SvcChain // keyed by {connection id, request id}
	Violations []Violation

	// replay state
	doorbells    map[int32]time.Duration // last doorbell per qid
	preppedNoDB  map[int32][]*Chain      // per-qid chains prepped but not yet doorbelled
	undelivered  map[int32]int           // per-qid commands doorbelled but not device-started
	held         map[[2]int64]bool       // CIDs inside an armed (unraised) aggregation
	handlerDepth int
	postsPending map[int32]int // per-core UPID posts not yet recognized
	journalDirty int           // journal writes since last commit
	netSent      map[int32]uint64
	netArrived   map[int32]uint64 // delivered + dropped, per link

	// page-cache replay state
	cacheBudget uint64                 // CacheBytes (0 until a CacheBudget event)
	ioInflight  map[[2]int64][2]uint64 // open SQEPrep→CQEConsume LBA intervals
	writtenBack [][2]uint64            // LBA intervals covered by WritebackRun

	// copy-accounting replay state
	copyBudget map[int32]uint64    // path id → announced copy budget
	copyCount  map[[2]int64]uint64 // (path id, chain id) → copies observed

	// priority-delivery replay state
	recogClass map[[2]int64]uint64      // (core, recognition id) → highest class delivered so far
	postMarks  map[[2]int64]postMark    // (core, vector) → earliest outstanding classed post
	sloBounds  map[uint32]time.Duration // class → delivery-latency bound (SLOBound)

	// replication replay state (cross-node causal chains)
	pgRF       map[int32]uint64            // pg → replication factor (ClusterPG)
	raftCommit map[[2]int64]uint64         // (pg, node) → last commit index this incarnation
	raftApply  map[[2]int64]uint64         // (pg, node) → last applied index
	applyHash  map[[2]int64]uint64         // (pg, index) → first observed apply hash
	acceptSets map[[2]int64]map[uint64]map[uint32]bool // (pg, index) → term → accepting nodes
	ackIdx     map[[2]int64]uint64         // (pg, lba) → highest acked raft index
	readFloor  map[[2]int64]uint64         // (pg, request id) → acked-index floor at ReadStart

	// metadata-service replay state
	mdsLease  map[uint32]*mdsLeaseState  // lease id → lifecycle
	mdsRename map[uint32]*mdsRenameState // rename txn id → progress
}

// mdsLeaseState tracks one layout lease's lifecycle through the trace.
type mdsLeaseState struct {
	granted    bool
	released   bool
	revokeSent bool
	revoked    bool
}

// mdsRenameState tracks one rename transaction's visibility events.
type mdsRenameState struct {
	link, unlink, done int
}

// postMark is one outstanding classed UPID post awaiting delivery.
type postMark struct {
	at    time.Duration
	class uint32
}

// key builds the chain map key; cids are unique per queue, not globally.
func key(qid int32, cid uint32) [2]int64 { return [2]int64{int64(qid), int64(cid)} }

// Analyze replays evs (sorted by Seq, as Tracer.Events returns them) and
// returns the populated analyzer.
func Analyze(evs []Event) *Analyzer {
	a := &Analyzer{
		Chains:       make(map[[2]int64]*Chain),
		SvcChains:    make(map[[2]int64]*SvcChain),
		doorbells:    make(map[int32]time.Duration),
		preppedNoDB:  make(map[int32][]*Chain),
		undelivered:  make(map[int32]int),
		held:         make(map[[2]int64]bool),
		postsPending: make(map[int32]int),
		netSent:      make(map[int32]uint64),
		netArrived:   make(map[int32]uint64),
		ioInflight:   make(map[[2]int64][2]uint64),
		copyBudget:   make(map[int32]uint64),
		copyCount:    make(map[[2]int64]uint64),
		recogClass:   make(map[[2]int64]uint64),
		postMarks:    make(map[[2]int64]postMark),
		sloBounds:    make(map[uint32]time.Duration),
		pgRF:         make(map[int32]uint64),
		raftCommit:   make(map[[2]int64]uint64),
		raftApply:    make(map[[2]int64]uint64),
		applyHash:    make(map[[2]int64]uint64),
		acceptSets:   make(map[[2]int64]map[uint64]map[uint32]bool),
		ackIdx:       make(map[[2]int64]uint64),
		readFloor:    make(map[[2]int64]uint64),
		mdsLease:     make(map[uint32]*mdsLeaseState),
		mdsRename:    make(map[uint32]*mdsRenameState),
	}
	for _, e := range evs {
		a.step(e)
	}
	if a.handlerDepth != 0 {
		a.violate(0, "handler-bracket", fmt.Sprintf("trace ends at handler depth %d", a.handlerDepth))
	}
	return a
}

func (a *Analyzer) violate(seq uint64, rule, format string, args ...any) {
	a.Violations = append(a.Violations, Violation{Seq: seq, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// chain returns (creating if needed) the chain for (qid, cid), initializing
// all stages to "not observed".
func (a *Analyzer) chain(qid int32, cid uint32, lba uint64) *Chain {
	k := key(qid, cid)
	c := a.Chains[k]
	if c == nil {
		c = &Chain{QID: qid, CID: cid, LBA: lba,
			Prep: noStage, Doorbell: noStage, DeviceStart: noStage,
			DeviceDone: noStage, Post: noStage, Consume: noStage}
		a.Chains[k] = c
	}
	return c
}

func (a *Analyzer) step(e Event) {
	switch e.Type {
	case SQEPrep:
		c := a.chain(e.QID, e.CID, e.LBA)
		if c.Prep >= 0 {
			a.violate(e.Seq, "cid-reuse", "qid=%d cid=%d prepped twice without consume", e.QID, e.CID)
		}
		c.Prep = e.At
		a.preppedNoDB[e.QID] = append(a.preppedNoDB[e.QID], c)
		nlb := e.Aux
		if nlb == 0 {
			nlb = 1
		}
		a.ioInflight[key(e.QID, e.CID)] = [2]uint64{e.LBA, e.LBA + nlb}

	case DoorbellWrite:
		a.doorbells[e.QID] = e.At
		a.undelivered[e.QID] += int(e.Aux)
		// Stamp the doorbell onto every chain prepped on this queue since
		// the previous doorbell write.
		for _, c := range a.preppedNoDB[e.QID] {
			c.Doorbell = e.At
		}
		a.preppedNoDB[e.QID] = a.preppedNoDB[e.QID][:0]

	case DeviceStart:
		c := a.chain(e.QID, e.CID, e.LBA)
		if c.Doorbell < 0 {
			a.violate(e.Seq, "doorbell-before-device",
				"qid=%d cid=%d started on device without a covering doorbell write", e.QID, e.CID)
		}
		if a.undelivered[e.QID] <= 0 {
			a.violate(e.Seq, "doorbell-before-device",
				"qid=%d device consumed more SQEs than doorbells handed over", e.QID)
		} else {
			a.undelivered[e.QID]--
		}
		c.DeviceStart = e.At

	case DeviceDone:
		c := a.chain(e.QID, e.CID, e.LBA)
		c.DeviceDone = e.At

	case CQEPost:
		c := a.chain(e.QID, e.CID, e.LBA)
		if c.Post >= 0 {
			a.violate(e.Seq, "cqe-exactly-once", "qid=%d cid=%d posted twice", e.QID, e.CID)
		}
		c.Post = e.At

	case CQEConsume:
		c := a.chain(e.QID, e.CID, e.LBA)
		if c.Post < 0 {
			a.violate(e.Seq, "cqe-exactly-once", "qid=%d cid=%d consumed without a post", e.QID, e.CID)
		}
		if c.Consume >= 0 {
			a.violate(e.Seq, "cqe-exactly-once", "qid=%d cid=%d consumed twice", e.QID, e.CID)
		}
		k := key(e.QID, e.CID)
		if a.held[k] && a.handlerDepth == 0 {
			// The completion joined an armed aggregation (no interrupt
			// raised yet) and something consumed it outside any delivery
			// handler: a recovery path reaping completions the device
			// still intends to signal — the PR 2 watchdog bug.
			a.violate(e.Seq, "consume-while-held",
				"qid=%d cid=%d reaped outside a handler while its aggregation was still armed", e.QID, e.CID)
		}
		delete(a.held, k)
		delete(a.ioInflight, k)
		c.Consume = e.At
		c.InHandler = a.handlerDepth > 0

	case IRQRaise:
		// The aggregation (if any) fired: nothing on this queue is held.
		a.releaseQueue(e.QID)

	case IRQCoalesce:
		a.held[key(e.QID, e.CID)] = true

	case IRQSuppress:
		// Host drained the CQ by polling; the armed aggregation is
		// cancelled and its completions are legitimately consumed.
		a.releaseQueue(e.QID)

	case UPIDPost:
		a.postsPending[e.Core]++
		// A classed post (LBA = class+1; 0 for unclassed UPIDs) starts the
		// delivery-latency clock for its vector unless one is already
		// ticking — ON-bit coalescing means the earliest post bounds them
		// all.
		if e.LBA > 0 {
			k := key(e.Core, uint32(e.Aux))
			if _, ok := a.postMarks[k]; !ok {
				a.postMarks[k] = postMark{at: e.At, class: uint32(e.LBA - 1)}
			}
		}

	case UINTRDeliver:
		if e.Aux > 0 && a.postsPending[e.Core] <= 0 {
			a.violate(e.Seq, "delivery-without-post",
				"core=%d recognized %d vector(s) with no outstanding UPID post", e.Core, e.Aux)
		}
		// One recognition consumes all outstanding posts for the core
		// (PIR is transferred wholesale; ON-bit coalescing means several
		// posts can collapse into one delivery).
		a.postsPending[e.Core] = 0

	case UINTRVecDeliver:
		// Within one recognition (one poll of the PIR), deliveries must be
		// ordered strictly highest-class-first: a pending higher-class
		// (numerically lower) vector delivered after a lower-class one was
		// passed over in the drain — a priority inversion. Nested
		// (preemptive) deliveries carry a fresh recognition id and so form
		// their own group.
		gk := key(e.Core, e.CID)
		if prev, ok := a.recogClass[gk]; ok && e.Aux < prev {
			a.violate(e.Seq, "priority-order",
				"core=%d recognition=%d delivered class-%d vector %d after a class-%d delivery in the same poll",
				e.Core, e.CID, e.Aux, e.LBA, prev)
		} else if !ok || e.Aux > prev {
			a.recogClass[gk] = e.Aux
		}
		vk := key(e.Core, uint32(e.LBA))
		if m, ok := a.postMarks[vk]; ok {
			delete(a.postMarks, vk)
			if bound, bok := a.sloBounds[uint32(e.Aux)]; bok && e.At-m.at > bound {
				a.violate(e.Seq, "slo-delivery-bound",
					"core=%d vector=%d class=%d delivered %v after its post, over the %v bound",
					e.Core, e.LBA, e.Aux, e.At-m.at, bound)
			}
		}

	case UINTRPreempt:
		if a.handlerDepth == 0 {
			a.violate(e.Seq, "preempt-outside-handler",
				"core=%d preemptive delivery (class=%d vector=%d) with no handler in progress",
				e.Core, e.Aux>>8, e.Aux&0xff)
		}

	case UPIDClear:
		// The kernel path consumed the posted bitmap wholesale; its vectors
		// are no longer awaiting an in-schedule delivery.
		for v := uint32(0); v < 64; v++ {
			if e.Aux&(uint64(1)<<v) != 0 {
				delete(a.postMarks, key(e.Core, v))
			}
		}

	case SLOBound:
		a.sloBounds[e.CID] = time.Duration(e.Aux)

	case IRQBypass:
		// Informational: the immediate IRQRaise that follows releases any
		// held aggregation on the queue.

	case HandlerEnter:
		a.handlerDepth++

	case HandlerExit:
		a.handlerDepth--
		if a.handlerDepth < 0 {
			a.violate(e.Seq, "handler-bracket", "HandlerExit without matching HandlerEnter")
			a.handlerDepth = 0
		}

	case JournalWrite:
		a.journalDirty++

	case JournalCommit:
		if a.journalDirty == 0 {
			a.violate(e.Seq, "commit-after-journal-write",
				"commit of %d txn(s) with no journal batch written since last commit", e.Aux)
		}
		a.journalDirty = 0

	case PagecacheFlush:
		// ordering relative to journal is checked by aeofs crash tests;
		// nothing to track here.

	case CacheBudget:
		a.cacheBudget = e.Aux

	case CacheInsert:
		if a.cacheBudget > 0 && e.Aux > a.cacheBudget {
			a.violate(e.Seq, "cache-budget",
				"%d resident bytes after insert of %d page(s) exceeds budget %d",
				e.Aux, e.LBA, a.cacheBudget)
		}

	case CacheEvict:
		if e.LBA == ^uint64(0) {
			break
		}
		if e.CID == 0 {
			// A clean page must not be evicted while a command on its
			// block is still in flight: the eventual CQE would fill a
			// buffer the cache no longer owns, and a re-read of the page
			// could observe stale contents.
			for k, iv := range a.ioInflight {
				if e.LBA >= iv[0] && e.LBA < iv[1] {
					a.violate(e.Seq, "evict-while-inflight",
						"clean evict of lba=%d inside in-flight command qid=%d cid=%d [%d,%d)",
						e.LBA, k[0], k[1], iv[0], iv[1])
				}
			}
		} else {
			// A dirty victim must have been written back first.
			covered := false
			for _, iv := range a.writtenBack {
				if e.LBA >= iv[0] && e.LBA < iv[1] {
					covered = true
					break
				}
			}
			if !covered {
				a.violate(e.Seq, "dirty-evict-without-writeback",
					"dirty evict of lba=%d with no prior write-back run covering it", e.LBA)
			}
		}

	case WritebackRun:
		n := e.Aux
		if n == 0 {
			n = 1
		}
		a.writtenBack = append(a.writtenBack, [2]uint64{e.LBA, e.LBA + n})

	case CopyBudget:
		if prev, ok := a.copyBudget[e.QID]; ok && prev != e.Aux {
			a.violate(e.Seq, "copy-budget",
				"path=%d copy budget re-announced as %d (was %d)", e.QID, e.Aux, prev)
		}
		a.copyBudget[e.QID] = e.Aux

	case BufCopy:
		budget, ok := a.copyBudget[e.QID]
		if !ok {
			a.violate(e.Seq, "copy-budget",
				"path=%d chain=%d copied %d byte(s) with no announced copy budget",
				e.QID, e.CID, e.Aux)
			break
		}
		k := key(e.QID, e.CID)
		a.copyCount[k]++
		if a.copyCount[k] > budget {
			a.violate(e.Seq, "copy-budget",
				"path=%d chain=%d performed copy %d of %d byte(s), over the %d-copy budget",
				e.QID, e.CID, a.copyCount[k], e.Aux, budget)
		}

	case BufHandoff:
		// Informational: ownership moved without a copy. The per-chain copy
		// counter is deliberately untouched.

	case NetSend:
		a.netSent[e.QID]++

	case NetDeliver, NetDrop:
		a.netArrived[e.QID]++
		if a.netArrived[e.QID] > a.netSent[e.QID] {
			a.violate(e.Seq, "net-deliver-without-send",
				"link=%d delivered/dropped %d message(s) with only %d sent",
				e.QID, a.netArrived[e.QID], a.netSent[e.QID])
		}

	case SvcReqRecv:
		k := key(e.QID, e.CID)
		if a.SvcChains[k] != nil {
			a.violate(e.Seq, "svc-reqid-reuse",
				"conn=%d req=%d received twice", e.QID, e.CID)
			break
		}
		c := a.svcChain(e.QID, e.CID)
		c.Recv = e.At
		c.Op = e.Aux

	case SvcAdmit:
		c := a.svcChain(e.QID, e.CID)
		if c.Recv < 0 {
			a.violate(e.Seq, "svc-causal-order",
				"conn=%d req=%d admitted before being received", e.QID, e.CID)
		}
		if c.Shed {
			a.violate(e.Seq, "svc-admit-or-shed",
				"conn=%d req=%d admitted after being shed", e.QID, e.CID)
		}
		if c.Admit >= 0 {
			a.violate(e.Seq, "svc-admit-or-shed",
				"conn=%d req=%d admitted twice", e.QID, e.CID)
		}
		c.Admit = e.At

	case SvcShed:
		c := a.svcChain(e.QID, e.CID)
		if c.Recv < 0 {
			a.violate(e.Seq, "svc-causal-order",
				"conn=%d req=%d shed before being received", e.QID, e.CID)
		}
		if c.Admit >= 0 {
			a.violate(e.Seq, "svc-admit-or-shed",
				"conn=%d req=%d shed after being admitted", e.QID, e.CID)
		}
		c.Shed = true

	case SvcFSOp:
		c := a.svcChain(e.QID, e.CID)
		if c.Admit < 0 {
			a.violate(e.Seq, "svc-causal-order",
				"conn=%d req=%d executed an fs op without admission", e.QID, e.CID)
		}
		c.FSOp = e.At

	case SvcReply:
		c := a.svcChain(e.QID, e.CID)
		if c.Recv < 0 {
			a.violate(e.Seq, "svc-causal-order",
				"conn=%d req=%d replied without being received", e.QID, e.CID)
		}
		if c.Reply >= 0 {
			a.violate(e.Seq, "svc-reply-exactly-once",
				"conn=%d req=%d replied twice", e.QID, e.CID)
		}
		c.Reply = e.At

	case ClusterPG:
		a.pgRF[e.QID] = e.Aux

	case RaftLeader:
		// Informational anchor for the cross-node chain; term safety is
		// enforced inside internal/raft.

	case RaftRestart:
		// Volatile raft state (commit/applied) legitimately resets across a
		// crash; the monotonicity floors restart with the incarnation.
		nk := key(e.QID, e.CID)
		delete(a.raftCommit, nk)
		delete(a.raftApply, nk)

	case RaftAccept:
		ik := [2]int64{int64(e.QID), int64(e.LBA)}
		terms := a.acceptSets[ik]
		if terms == nil {
			terms = make(map[uint64]map[uint32]bool)
			a.acceptSets[ik] = terms
		}
		if terms[e.Aux] == nil {
			terms[e.Aux] = make(map[uint32]bool)
		}
		terms[e.Aux][e.CID] = true

	case RaftCommit:
		nk := key(e.QID, e.CID)
		if prev, ok := a.raftCommit[nk]; ok && e.LBA < prev {
			a.violate(e.Seq, "commit-monotonic",
				"pg=%d node=%d commit index regressed %d -> %d without a restart",
				e.QID, e.CID, prev, e.LBA)
		}
		a.raftCommit[nk] = e.LBA

	case RaftApply:
		nk := key(e.QID, e.CID)
		if e.LBA > a.raftCommit[nk] {
			a.violate(e.Seq, "apply-beyond-commit",
				"pg=%d node=%d applied index %d above its commit index %d",
				e.QID, e.CID, e.LBA, a.raftCommit[nk])
		}
		if prev, ok := a.raftApply[nk]; ok && e.LBA <= prev {
			a.violate(e.Seq, "apply-order",
				"pg=%d node=%d applied index %d after index %d", e.QID, e.CID, e.LBA, prev)
		}
		a.raftApply[nk] = e.LBA
		ik := [2]int64{int64(e.QID), int64(e.LBA)}
		if h, ok := a.applyHash[ik]; ok {
			if h != e.Aux {
				a.violate(e.Seq, "divergent-commit",
					"pg=%d index=%d applied with hash %#x on node %d but %#x elsewhere",
					e.QID, e.LBA, e.Aux, e.CID, h)
			}
		} else {
			a.applyHash[ik] = e.Aux
		}

	case ClusterAck:
		idx := e.Aux >> 32
		// The ack must be backed by a quorum of durable accepts of one term
		// at that index.
		rf := a.pgRF[e.QID]
		if rf == 0 {
			rf = 1
		}
		quorum := int(rf/2 + 1)
		backed := false
		for _, nodes := range a.acceptSets[[2]int64{int64(e.QID), int64(idx)}] {
			if len(nodes) >= quorum {
				backed = true
				break
			}
		}
		if !backed {
			a.violate(e.Seq, "ack-before-quorum",
				"pg=%d req=%d acked write at index %d without a quorum (%d/%d) of accepts",
				e.QID, e.CID, idx, quorum, rf)
		}
		lk := [2]int64{int64(e.QID), int64(e.LBA)}
		if idx > a.ackIdx[lk] {
			a.ackIdx[lk] = idx
		}

	case ClusterReadStart:
		// Freeze the linearizability floor: the newest write already acked
		// for this block when the read was issued.
		a.readFloor[key(e.QID, e.CID)] = a.ackIdx[[2]int64{int64(e.QID), int64(e.LBA)}]

	case ClusterRead:
		// A retried read may be served more than once (each timed-out
		// attempt that still committed serves it again); every serve must
		// clear the floor frozen at the single ReadStart.
		rk := key(e.QID, e.CID)
		floor, ok := a.readFloor[rk]
		if !ok {
			a.violate(e.Seq, "read-chain",
				"pg=%d req=%d read served without a ClusterReadStart", e.QID, e.CID)
			break
		}
		if idx := e.Aux >> 32; idx < floor {
			a.violate(e.Seq, "stale-read-after-commit",
				"pg=%d req=%d lba=%d read served at index %d below the acked-write floor %d",
				e.QID, e.CID, e.LBA, idx, floor)
		}

	case MDSOp:
		// Informational per-shard op marker; throughput is derived from it
		// by the experiments, no invariant attaches here.

	case MDSLeaseGrant:
		if a.mdsLease[e.CID] != nil {
			a.violate(e.Seq, "lease-grant-once",
				"shard=%d lease=%d granted twice", e.QID, e.CID)
			break
		}
		a.mdsLease[e.CID] = &mdsLeaseState{granted: true}

	case MDSLeaseRelease:
		ls := a.mdsLease[e.CID]
		if ls == nil {
			a.violate(e.Seq, "lease-lifecycle",
				"shard=%d lease=%d released without a grant", e.QID, e.CID)
			break
		}
		if ls.released || ls.revoked {
			a.violate(e.Seq, "lease-lifecycle",
				"shard=%d lease=%d released after it was already dead", e.QID, e.CID)
		}
		ls.released = true

	case MDSLeaseRevoke:
		ls := a.mdsLease[e.CID]
		if ls == nil {
			a.violate(e.Seq, "lease-lifecycle",
				"shard=%d revoke sent for unknown lease %d", e.QID, e.CID)
			break
		}
		ls.revokeSent = true

	case MDSLeaseRevoked:
		ls := a.mdsLease[e.CID]
		if ls == nil || !ls.revokeSent {
			a.violate(e.Seq, "lease-lifecycle",
				"shard=%d lease=%d revoke completed without a revoke being sent", e.QID, e.CID)
			break
		}
		if ls.revoked {
			a.violate(e.Seq, "lease-lifecycle",
				"shard=%d lease=%d revoke completed twice", e.QID, e.CID)
		}
		ls.revoked = true

	case MDSDataIO:
		// The direct-to-data invariant: every data I/O cites the layout
		// lease it runs under, and that lease must be alive — granted, not
		// released, and not past revoke completion. (I/O between a revoke
		// being sent and its ack is legal: the holder has not seen the
		// revoke yet.)
		ls := a.mdsLease[e.CID]
		switch {
		case ls == nil:
			a.violate(e.Seq, "data-io-without-lease",
				"node=%d ino=%d data i/o under unknown lease %d", e.QID, e.LBA, e.CID)
		case ls.released:
			a.violate(e.Seq, "data-io-without-lease",
				"node=%d ino=%d data i/o under released lease %d", e.QID, e.LBA, e.CID)
		case ls.revoked:
			a.violate(e.Seq, "data-io-without-lease",
				"node=%d ino=%d data i/o under lease %d after its revoke completed", e.QID, e.LBA, e.CID)
		}

	case MDSRenameLink:
		rs := a.mdsRenameTxn(e.CID)
		rs.link++
		if rs.link > 1 {
			a.violate(e.Seq, "rename-visibility",
				"txn=%d destination linked twice", e.CID)
		}

	case MDSRenameUnlink:
		rs := a.mdsRenameTxn(e.CID)
		rs.unlink++
		if rs.link == 0 {
			a.violate(e.Seq, "rename-visibility",
				"txn=%d source unlinked before the destination was linked (file invisible)", e.CID)
		}
		if rs.unlink > 1 {
			a.violate(e.Seq, "rename-visibility",
				"txn=%d source unlinked twice", e.CID)
		}

	case MDSRenameDone:
		rs := a.mdsRenameTxn(e.CID)
		rs.done++
		if rs.done > 1 {
			a.violate(e.Seq, "rename-visibility",
				"txn=%d completed twice", e.CID)
		} else if rs.link != 1 || rs.unlink != 1 {
			a.violate(e.Seq, "rename-visibility",
				"txn=%d completed with link=%d unlink=%d (want exactly one of each)",
				e.CID, rs.link, rs.unlink)
		}
	}
}

// mdsRenameTxn returns (creating if needed) the rename-transaction state.
func (a *Analyzer) mdsRenameTxn(txn uint32) *mdsRenameState {
	rs := a.mdsRename[txn]
	if rs == nil {
		rs = &mdsRenameState{}
		a.mdsRename[txn] = rs
	}
	return rs
}

// svcChain returns (creating if needed) the service chain for
// (connection, request id), initializing all stages to "not observed".
func (a *Analyzer) svcChain(conn int32, req uint32) *SvcChain {
	k := key(conn, req)
	c := a.SvcChains[k]
	if c == nil {
		c = &SvcChain{Conn: conn, Req: req,
			Recv: noStage, Admit: noStage, FSOp: noStage, Reply: noStage}
		a.SvcChains[k] = c
	}
	return c
}

// releaseQueue marks every held CID on qid as released (its IRQ fired or
// was suppressed by a poll).
func (a *Analyzer) releaseQueue(qid int32) {
	for k := range a.held {
		if k[0] == int64(qid) {
			delete(a.held, k)
		}
	}
}

// CopyStats summarizes the copy-accounting replay: how many chains copied at
// least once, the total copies across all chains, and the largest per-chain
// copy count observed.
func (a *Analyzer) CopyStats() (chains int, copies, maxPerChain uint64) {
	for _, n := range a.copyCount {
		chains++
		copies += n
		if n > maxPerChain {
			maxPerChain = n
		}
	}
	return chains, copies, maxPerChain
}

// Stage latency names, in pipeline order.
const (
	StagePrepToDoorbell = "prep→doorbell"
	StageDoorbellToDev  = "doorbell→device"
	StageDevice         = "device"
	StagePostToConsume  = "post→consume"
	StageEndToEnd       = "end-to-end"
)

// StageHistograms buckets per-stage latencies across all complete chains.
func (a *Analyzer) StageHistograms() map[string]*Histogram {
	hs := map[string]*Histogram{
		StagePrepToDoorbell: {},
		StageDoorbellToDev:  {},
		StageDevice:         {},
		StagePostToConsume:  {},
		StageEndToEnd:       {},
	}
	for _, c := range a.Chains {
		if !c.Complete() {
			continue
		}
		hs[StagePrepToDoorbell].Record(c.Doorbell - c.Prep)
		hs[StageDoorbellToDev].Record(c.DeviceStart - c.Doorbell)
		hs[StageDevice].Record(c.DeviceDone - c.DeviceStart)
		hs[StagePostToConsume].Record(c.Consume - c.Post)
		hs[StageEndToEnd].Record(c.Consume - c.Prep)
	}
	return hs
}

// Service stage latency names, in pipeline order.
const (
	SvcStageRecvToAdmit = "recv→admit"
	SvcStageAdmitToFSOp = "admit→fsop"
	SvcStageFSOpToReply = "fsop→reply"
	SvcStageEndToEnd    = "svc end-to-end"
)

// SvcStageHistograms buckets per-stage latencies across all complete,
// admitted service chains (shed chains carry no fs-op stage and would skew
// the service-time stages; their end-to-end cost shows up in the client's
// retry latency instead).
func (a *Analyzer) SvcStageHistograms() map[string]*Histogram {
	hs := map[string]*Histogram{
		SvcStageRecvToAdmit: {},
		SvcStageAdmitToFSOp: {},
		SvcStageFSOpToReply: {},
		SvcStageEndToEnd:    {},
	}
	for _, c := range a.SvcChains {
		if c.Shed || !c.Complete() {
			continue
		}
		hs[SvcStageRecvToAdmit].Record(c.Admit - c.Recv)
		hs[SvcStageAdmitToFSOp].Record(c.FSOp - c.Admit)
		hs[SvcStageFSOpToReply].Record(c.Reply - c.FSOp)
		hs[SvcStageEndToEnd].Record(c.Reply - c.Recv)
	}
	return hs
}

// SvcLatencyTable renders the per-stage service histograms as a report
// table (p50/p90/p99/max in microseconds).
func (a *Analyzer) SvcLatencyTable() *report.Table {
	t := &report.Table{
		ID:      "svclat",
		Title:   "Per-stage service latency (traced)",
		Columns: []string{"stage", "count", "p50_us", "p90_us", "p99_us", "max_us"},
	}
	hs := a.SvcStageHistograms()
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	for _, stage := range []string{SvcStageRecvToAdmit, SvcStageAdmitToFSOp, SvcStageFSOpToReply, SvcStageEndToEnd} {
		h := hs[stage]
		t.AddRowf(stage, h.Count(), us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99)), us(h.Max()))
	}
	return t
}

// LatencyTable renders the per-stage histograms as a report table
// (p50/p90/p99/max in microseconds).
func (a *Analyzer) LatencyTable() *report.Table {
	t := &report.Table{
		Title:   "Per-stage latency (traced)",
		Columns: []string{"stage", "count", "p50_us", "p90_us", "p99_us", "max_us"},
	}
	hs := a.StageHistograms()
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	for _, stage := range []string{StagePrepToDoorbell, StageDoorbellToDev, StageDevice, StagePostToConsume, StageEndToEnd} {
		h := hs[stage]
		t.AddRowf(stage, h.Count(), us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99)), us(h.Max()))
	}
	return t
}
