package trace

import (
	"strings"
	"testing"
	"time"
)

// evb builds synthetic event streams with auto-incrementing Seq.
type evb struct {
	seq uint64
	evs []Event
}

func (b *evb) add(at time.Duration, typ Type, core, qid int, cid uint32, lba, aux uint64) *evb {
	b.seq++
	b.evs = append(b.evs, Event{Seq: b.seq, At: at, Type: typ,
		Core: int32(core), QID: int32(qid), CID: cid, LBA: lba, Aux: aux})
	return b
}

// fullChain appends a complete, well-ordered single-command life to the
// stream: prep, doorbell, device, CQE, post, deliver, handler, consume.
func (b *evb) fullChain(at time.Duration, qid int, cid uint32) *evb {
	return b.
		add(at, SQEPrep, -1, qid, cid, 7, 1).
		add(at, DoorbellWrite, -1, qid, NoCID, 0, 1).
		add(at, DeviceStart, -1, qid, cid, 7, 1).
		add(at+5000, DeviceDone, -1, qid, cid, 7, 0).
		add(at+5000, CQEPost, -1, qid, cid, 0, 0).
		add(at+5000, IRQRaise, -1, qid, NoCID, 0, 1).
		add(at+5000, UPIDPost, 0, -1, NoCID, 0, 3).
		add(at+5000, UINTRDeliver, 0, -1, NoCID, 0, 1).
		add(at+5000, HandlerEnter, 0, -1, NoCID, 0, 3).
		add(at+5000, CQEConsume, -1, qid, cid, 0, 0).
		add(at+5000, HandlerExit, 0, -1, NoCID, 0, 3)
}

func hasViolation(a *Analyzer, rule string) bool {
	for _, v := range a.Violations {
		if strings.Contains(v.Rule, rule) {
			return true
		}
	}
	return false
}

func TestAnalyzerCleanChain(t *testing.T) {
	var b evb
	b.fullChain(0, 1, 1).fullChain(10000, 1, 2)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("clean trace produced violations: %v", a.Violations)
	}
	if len(a.Chains) != 2 {
		t.Fatalf("got %d chains, want 2", len(a.Chains))
	}
	for _, c := range a.Chains {
		if !c.Complete() || !c.Delivered() {
			t.Errorf("chain qid=%d cid=%d: Complete=%v Delivered=%v, want true/true",
				c.QID, c.CID, c.Complete(), c.Delivered())
		}
	}
}

func TestAnalyzerDeviceWithoutDoorbell(t *testing.T) {
	var b evb
	b.add(0, SQEPrep, -1, 1, 1, 7, 1).
		add(0, DeviceStart, -1, 1, 1, 7, 1) // no DoorbellWrite
	a := Analyze(b.evs)
	if !hasViolation(a, "doorbell-before-device") {
		t.Fatalf("missing doorbell-before-device violation, got %v", a.Violations)
	}
}

func TestAnalyzerDeviceOverrunsDoorbell(t *testing.T) {
	// One doorbell covering 1 command, but the device starts 2.
	var b evb
	b.add(0, SQEPrep, -1, 1, 1, 7, 1).
		add(0, DoorbellWrite, -1, 1, NoCID, 0, 1).
		add(0, DeviceStart, -1, 1, 1, 7, 1).
		add(0, DeviceStart, -1, 1, 2, 8, 1)
	a := Analyze(b.evs)
	if !hasViolation(a, "doorbell-before-device") {
		t.Fatalf("device consumed more SQEs than doorbells covered; got %v", a.Violations)
	}
}

func TestAnalyzerDuplicateCQE(t *testing.T) {
	var b evb
	b.fullChain(0, 1, 1).
		add(9000, CQEPost, -1, 1, 1, 0, 0) // second CQE for cid 1
	a := Analyze(b.evs)
	if !hasViolation(a, "cqe-exactly-once") {
		t.Fatalf("missing cqe-exactly-once violation, got %v", a.Violations)
	}
}

func TestAnalyzerConsumeWithoutPost(t *testing.T) {
	var b evb
	b.add(0, CQEConsume, -1, 1, 5, 0, 0)
	a := Analyze(b.evs)
	if !hasViolation(a, "cqe-exactly-once") {
		t.Fatalf("missing consume-without-post violation, got %v", a.Violations)
	}
}

func TestAnalyzerDuplicateConsume(t *testing.T) {
	var b evb
	b.fullChain(0, 1, 1).
		add(9000, CQEConsume, -1, 1, 1, 0, 0)
	a := Analyze(b.evs)
	if !hasViolation(a, "cqe-exactly-once") {
		t.Fatalf("missing duplicate-consume violation, got %v", a.Violations)
	}
}

func TestAnalyzerDeliveryWithoutPost(t *testing.T) {
	var b evb
	b.add(0, UINTRDeliver, 0, -1, NoCID, 0, 1) // recognized a vector, nothing posted
	a := Analyze(b.evs)
	if !hasViolation(a, "delivery-without-post") {
		t.Fatalf("missing delivery-without-post violation, got %v", a.Violations)
	}
}

func TestAnalyzerSpuriousDeliveryIsExempt(t *testing.T) {
	// Aux=0 marks a spurious re-delivery (dup notification after the PIR
	// was drained): legal, not a violation.
	var b evb
	b.add(0, UINTRDeliver, 0, -1, NoCID, 0, 0)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("spurious delivery must be exempt, got %v", a.Violations)
	}
}

// TestAnalyzerConsumeWhileHeld is the watchdog false-recovery signature: a
// completion joins an armed coalescing aggregation (IRQCoalesce, no raise
// yet) and something reaps it outside any handler bracket.
func TestAnalyzerConsumeWhileHeld(t *testing.T) {
	var b evb
	b.add(0, SQEPrep, -1, 1, 1, 7, 1).
		add(0, DoorbellWrite, -1, 1, NoCID, 0, 1).
		add(0, DeviceStart, -1, 1, 1, 7, 1).
		add(5000, DeviceDone, -1, 1, 1, 7, 0).
		add(5000, CQEPost, -1, 1, 1, 0, 0).
		add(5000, IRQCoalesce, -1, 1, 1, 0, 1). // joined an armed aggregation
		add(8000, CQEConsume, -1, 1, 1, 0, 0)   // reaped with no handler, no raise
	a := Analyze(b.evs)
	if !hasViolation(a, "consume-while-held") {
		t.Fatalf("missing consume-while-held violation, got %v", a.Violations)
	}
}

// The two legitimate ways a held completion gets consumed: inside a handler
// bracket after the aggregation raised, or via poll-suppression. Neither
// may trip the rule.
func TestAnalyzerHeldConsumeLegitimatePaths(t *testing.T) {
	// Raise path: coalesce → raise → deliver → handler consume.
	var b evb
	b.add(0, SQEPrep, -1, 1, 1, 7, 1).
		add(0, DoorbellWrite, -1, 1, NoCID, 0, 1).
		add(0, DeviceStart, -1, 1, 1, 7, 1).
		add(5000, DeviceDone, -1, 1, 1, 7, 0).
		add(5000, CQEPost, -1, 1, 1, 0, 0).
		add(5000, IRQCoalesce, -1, 1, 1, 0, 1).
		add(25000, IRQRaise, -1, 1, NoCID, 0, 1). // aggregation timer fired
		add(25000, UPIDPost, 0, -1, NoCID, 0, 3).
		add(25000, UINTRDeliver, 0, -1, NoCID, 0, 1).
		add(25000, HandlerEnter, 0, -1, NoCID, 0, 3).
		add(25000, CQEConsume, -1, 1, 1, 0, 0).
		add(25000, HandlerExit, 0, -1, NoCID, 0, 3)
	if a := Analyze(b.evs); len(a.Violations) != 0 {
		t.Fatalf("raise path: unexpected violations %v", a.Violations)
	}

	// Suppress path: the host polls the CQ dry before the timer fires.
	// The consume precedes the IRQSuppress in emission order (Poll emits
	// consumes first), but with no later raise the reap is legitimate...
	// except the analyzer flags it at consume time if nothing released
	// the queue. The device model emits IRQSuppress only after the drain,
	// so the suppression must retroactively not have been flagged — which
	// holds because in poll mode nothing is ever held (OnCompletion nil
	// means no IRQCoalesce events). Model that stream:
	var p evb
	p.add(0, SQEPrep, -1, 1, 1, 7, 1).
		add(0, DoorbellWrite, -1, 1, NoCID, 0, 1).
		add(0, DeviceStart, -1, 1, 1, 7, 1).
		add(5000, DeviceDone, -1, 1, 1, 7, 0).
		add(5000, CQEPost, -1, 1, 1, 0, 0).
		add(6000, CQEConsume, -1, 1, 1, 0, 0)
	if a := Analyze(p.evs); len(a.Violations) != 0 {
		t.Fatalf("poll path: unexpected violations %v", a.Violations)
	}
}

func TestAnalyzerCommitWithoutJournalWrite(t *testing.T) {
	var b evb
	b.add(0, JournalCommit, -1, -1, NoCID, 0, 1)
	a := Analyze(b.evs)
	if !hasViolation(a, "commit-after-journal-write") {
		t.Fatalf("missing commit-after-journal-write violation, got %v", a.Violations)
	}

	var ok evb
	ok.add(0, JournalWrite, -1, 0, NoCID, 100, 3).
		add(1000, JournalCommit, -1, -1, NoCID, 0, 1)
	if a := Analyze(ok.evs); len(a.Violations) != 0 {
		t.Fatalf("write-then-commit must be clean, got %v", a.Violations)
	}
}

func TestAnalyzerHandlerBracketBalance(t *testing.T) {
	var b evb
	b.add(0, HandlerExit, 0, -1, NoCID, 0, 3)
	if a := Analyze(b.evs); !hasViolation(a, "handler-bracket") {
		t.Fatal("missing handler-bracket violation for unmatched exit")
	}
	var u evb
	u.add(0, HandlerEnter, 0, -1, NoCID, 0, 3)
	if a := Analyze(u.evs); !hasViolation(a, "handler-bracket") {
		t.Fatal("missing handler-bracket violation for unclosed enter")
	}
}

func TestStageHistogramsAndLatencyTable(t *testing.T) {
	var b evb
	for i := 0; i < 8; i++ {
		b.fullChain(time.Duration(i)*10000, 1, uint32(i+1))
	}
	a := Analyze(b.evs)
	hs := a.StageHistograms()
	if hs[StageDevice].Count() != 8 {
		t.Fatalf("device stage count = %d, want 8", hs[StageDevice].Count())
	}
	if got := hs[StageDevice].Percentile(50); got != 5*time.Microsecond {
		t.Errorf("device P50 = %v, want 5µs (all chains identical)", got)
	}
	if got := hs[StageEndToEnd].Max(); got != 5*time.Microsecond {
		t.Errorf("end-to-end max = %v, want 5µs", got)
	}
	tbl := a.LatencyTable()
	if len(tbl.Rows) != 5 {
		t.Fatalf("latency table rows = %d, want 5 stages", len(tbl.Rows))
	}
}
