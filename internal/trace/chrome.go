package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry in the Chrome trace_event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" = complete span (with dur), "i" = instant. ts/dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the event stream as Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. Device-side events (rows
// keyed by queue) live under pid 0; core-side events under pid 1 with one
// tid per core. Paired events — DeviceStart/DeviceDone per (qid,cid) and
// HandlerEnter/HandlerExit per core — become duration spans; everything
// else an instant with its fields in args.
func WriteChrome(w io.Writer, evs []Event) error {
	us := func(e Event) float64 { return float64(e.At) / 1e3 }
	tid := func(e Event) int {
		if e.Core >= 0 {
			return int(e.Core)
		}
		if e.QID >= 0 {
			return int(e.QID)
		}
		return 0
	}
	pid := func(e Event) int {
		if e.Core >= 0 {
			return 1
		}
		return 0
	}

	var out []chromeEvent
	devStart := make(map[[2]int64]Event)  // (qid,cid) → DeviceStart
	handlerStart := make(map[int32]Event) // core → HandlerEnter

	for _, e := range evs {
		switch e.Type {
		case DeviceStart:
			devStart[key(e.QID, e.CID)] = e
		case DeviceDone:
			if s, ok := devStart[key(e.QID, e.CID)]; ok {
				delete(devStart, key(e.QID, e.CID))
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("io cid=%d", e.CID), Phase: "X",
					TS: us(s), Dur: us(e) - us(s), PID: 0, TID: int(e.QID),
					Args: map[string]any{"cid": e.CID, "lba": e.LBA, "status": e.Aux},
				})
			}
		case HandlerEnter:
			handlerStart[e.Core] = e
		case HandlerExit:
			if s, ok := handlerStart[e.Core]; ok {
				delete(handlerStart, e.Core)
				name := "uintr handler"
				if e.Aux == KernelPathAux {
					name = "kernel-path drain"
				}
				out = append(out, chromeEvent{
					Name: name, Phase: "X",
					TS: us(s), Dur: us(e) - us(s), PID: 1, TID: int(e.Core),
					Args: map[string]any{"vector": s.Aux},
				})
			}
		default:
			args := map[string]any{"seq": e.Seq, "aux": e.Aux}
			if e.CID != NoCID {
				args["cid"] = e.CID
				args["lba"] = e.LBA
			}
			if e.QID >= 0 {
				args["qid"] = e.QID
			}
			out = append(out, chromeEvent{
				Name: e.Type.String(), Phase: "i", Scope: "t",
				TS: us(e), PID: pid(e), TID: tid(e), Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{"traceEvents": out})
}
