package trace

import "testing"

// Hand-built violation sequences for the PR-7 replication invariants,
// mirroring the PR-6 unit-sequence style: each invariant is exercised in
// both directions (a clean sequence that must not flag, and a corrupted one
// that must). Encodings mirror the cluster emitters: RaftAccept carries
// (pg, node, index, term) in (QID, CID, LBA, Aux); RaftCommit the new commit
// index in LBA; RaftApply the payload hash in Aux; ClusterAck/ClusterRead
// carry raft index<<32 | hash in Aux.

// replicatedWrite appends a clean 3-replica write at (pg, index): accepts on
// all three nodes, leader commit + apply, then the client ack.
func (b *evb) replicatedWrite(pg int, index, term, lba uint64, req uint32, hash uint64) *evb {
	for node := uint32(0); node < 3; node++ {
		b.add(0, RaftAccept, -1, pg, node, index, term)
	}
	b.add(0, RaftCommit, -1, pg, 0, index, 0).
		add(0, RaftApply, -1, pg, 0, index, hash)
	return b.add(0, ClusterAck, -1, pg, req, lba, index<<32|hash)
}

func TestAnalyzerReplicationCleanSequence(t *testing.T) {
	var b evb
	b.add(0, ClusterPG, -1, 1, NoCID, 0, 3).
		add(0, RaftLeader, -1, 1, 0, 0, 1).
		replicatedWrite(1, 5, 1, 100, 7, 0xabc).
		// Followers commit and apply behind the leader.
		add(0, RaftCommit, -1, 1, 1, 5, 0).
		add(0, RaftApply, -1, 1, 1, 5, 0xabc).
		// A later read of the same block served at a higher index.
		add(1, ClusterReadStart, -1, 1, 8, 100, 0).
		add(1, ClusterRead, -1, 1, 8, 100, 6<<32|0xabc)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("clean replicated sequence flagged: %v", a.Violations)
	}
}

func TestAnalyzerDivergentCommit(t *testing.T) {
	var b evb
	b.add(0, ClusterPG, -1, 1, NoCID, 0, 3).
		replicatedWrite(1, 5, 1, 100, 7, 0xabc).
		// A second replica applies a different payload at the same index.
		add(0, RaftCommit, -1, 1, 1, 5, 0).
		add(0, RaftApply, -1, 1, 1, 5, 0xdef)
	a := Analyze(b.evs)
	if !hasViolation(a, "divergent-commit") {
		t.Fatalf("divergent apply hash at one index not flagged: %v", a.Violations)
	}
}

func TestAnalyzerAckBeforeQuorum(t *testing.T) {
	var b evb
	// rf=3 so quorum is 2, but only the leader accepted before the ack.
	b.add(0, ClusterPG, -1, 1, NoCID, 0, 3).
		add(0, RaftAccept, -1, 1, 0, 5, 1).
		add(0, RaftCommit, -1, 1, 0, 5, 0).
		add(0, RaftApply, -1, 1, 0, 5, 0xabc).
		add(0, ClusterAck, -1, 1, 7, 100, 5<<32|0xabc)
	a := Analyze(b.evs)
	if !hasViolation(a, "ack-before-quorum") {
		t.Fatalf("under-replicated ack not flagged: %v", a.Violations)
	}
}

func TestAnalyzerAckQuorumAcrossTerms(t *testing.T) {
	var b evb
	// Two accepts at the same index but in different terms do NOT form a
	// quorum: the index was overwritten by a conflict, and one store of each
	// version proves nothing.
	b.add(0, ClusterPG, -1, 1, NoCID, 0, 3).
		add(0, RaftAccept, -1, 1, 0, 5, 1).
		add(0, RaftAccept, -1, 1, 1, 5, 2).
		add(0, ClusterAck, -1, 1, 7, 100, 5<<32|0xabc)
	a := Analyze(b.evs)
	if !hasViolation(a, "ack-before-quorum") {
		t.Fatalf("cross-term accept set treated as a quorum: %v", a.Violations)
	}
}

func TestAnalyzerStaleReadAfterCommit(t *testing.T) {
	var b evb
	// A write to lba 100 is acked at index 10; a read issued afterwards is
	// served at index 5 — it predates the acked write it must observe.
	b.add(0, ClusterPG, -1, 1, NoCID, 0, 3).
		replicatedWrite(1, 10, 1, 100, 7, 0xabc).
		add(1, ClusterReadStart, -1, 1, 8, 100, 0).
		add(1, ClusterRead, -1, 1, 8, 100, 5<<32|0x111)
	a := Analyze(b.evs)
	if !hasViolation(a, "stale-read-after-commit") {
		t.Fatalf("stale read below the acked floor not flagged: %v", a.Violations)
	}
}

func TestAnalyzerReadBeforeAckNotStale(t *testing.T) {
	var b evb
	// The read was issued BEFORE the write was acked: serving it at a lower
	// index is legal (the operations are concurrent).
	b.add(0, ClusterPG, -1, 1, NoCID, 0, 3).
		add(0, ClusterReadStart, -1, 1, 8, 100, 0).
		replicatedWrite(1, 10, 1, 100, 7, 0xabc).
		add(1, ClusterRead, -1, 1, 8, 100, 5<<32|0x0)
	a := Analyze(b.evs)
	if hasViolation(a, "stale-read-after-commit") {
		t.Fatalf("concurrent read flagged as stale: %v", a.Violations)
	}
}

func TestAnalyzerCommitMonotonicity(t *testing.T) {
	var b evb
	b.add(0, RaftCommit, -1, 1, 0, 5, 0).
		add(0, RaftCommit, -1, 1, 0, 3, 0)
	a := Analyze(b.evs)
	if !hasViolation(a, "commit-monotonic") {
		t.Fatalf("commit regression not flagged: %v", a.Violations)
	}
}

func TestAnalyzerCommitResetAcrossRestart(t *testing.T) {
	var b evb
	// A crash-restart legitimately resets the volatile commit index.
	b.add(0, RaftCommit, -1, 1, 0, 5, 0).
		add(0, RaftRestart, -1, 1, 0, 0, 0).
		add(0, RaftCommit, -1, 1, 0, 2, 0)
	a := Analyze(b.evs)
	if hasViolation(a, "commit-monotonic") {
		t.Fatalf("post-restart commit flagged: %v", a.Violations)
	}
}

func TestAnalyzerApplyBeyondCommit(t *testing.T) {
	var b evb
	b.add(0, RaftCommit, -1, 1, 0, 5, 0).
		add(0, RaftApply, -1, 1, 0, 6, 0xabc)
	a := Analyze(b.evs)
	if !hasViolation(a, "apply-beyond-commit") {
		t.Fatalf("apply above commit not flagged: %v", a.Violations)
	}
}
