package trace

import "testing"

// A chain that copies exactly at the announced bound is clean: one announced
// budget of 1 copy for the FS read path, one copy per chain, plus handoffs
// (which never count against the budget).
func TestCopyBudgetChainAtBound(t *testing.T) {
	var b evb
	b.add(0, CopyBudget, -1, PathFSRead, NoCID, 0, 1).
		add(1000, BufHandoff, 0, PathFSRead, 7, 0, 0x0102).
		add(2000, BufCopy, 0, PathFSRead, 7, 0, 4096).
		add(3000, BufHandoff, 0, PathFSRead, 7, 0, 0x0203).
		add(4000, BufCopy, 0, PathFSRead, 8, 0, 4096)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("chains at the copy bound flagged: %v", a.Violations)
	}
	chains, copies, max := a.CopyStats()
	if chains != 2 || copies != 2 || max != 1 {
		t.Fatalf("CopyStats = (%d, %d, %d), want (2, 2, 1)", chains, copies, max)
	}
}

// An injected extra copy on the same chain must be flagged.
func TestCopyBudgetExtraCopyFlagged(t *testing.T) {
	var b evb
	b.add(0, CopyBudget, -1, PathFSRead, NoCID, 0, 1).
		add(1000, BufCopy, 0, PathFSRead, 7, 0, 4096).
		add(2000, BufCopy, 0, PathFSRead, 7, 0, 512)
	a := Analyze(b.evs)
	if !hasViolation(a, "copy-budget") {
		t.Fatal("second copy on a 1-copy-budget chain not flagged")
	}
}

// A zero-copy path (budget 0) flags its very first copy.
func TestCopyBudgetZeroCopyPath(t *testing.T) {
	var b evb
	b.add(0, CopyBudget, -1, PathWriteback, NoCID, 0, 0).
		add(1000, BufHandoff, 0, PathWriteback, 3, 0, 0x0304)
	if a := Analyze(b.evs); len(a.Violations) != 0 {
		t.Fatalf("handoff-only zero-copy chain flagged: %v", a.Violations)
	}
	b.add(2000, BufCopy, 0, PathWriteback, 3, 0, 4096)
	if a := Analyze(b.evs); !hasViolation(a, "copy-budget") {
		t.Fatal("copy on a zero-copy-budget path not flagged")
	}
}

// A copy with no announced budget is itself a violation: every traced path
// must declare its bound before moving data.
func TestCopyWithoutBudgetFlagged(t *testing.T) {
	var b evb
	b.add(0, BufCopy, 0, PathFSWrite, 1, 0, 4096)
	if a := Analyze(b.evs); !hasViolation(a, "copy-budget") {
		t.Fatal("copy without an announced budget not flagged")
	}
}

// Re-announcing a different budget for the same path is drift, not tuning.
func TestCopyBudgetReannounceFlagged(t *testing.T) {
	var b evb
	b.add(0, CopyBudget, -1, PathFSRead, NoCID, 0, 1).
		add(1000, CopyBudget, -1, PathFSRead, NoCID, 0, 1)
	if a := Analyze(b.evs); len(a.Violations) != 0 {
		t.Fatalf("identical re-announcement flagged: %v", a.Violations)
	}
	b.add(2000, CopyBudget, -1, PathFSRead, NoCID, 0, 2)
	if a := Analyze(b.evs); !hasViolation(a, "copy-budget") {
		t.Fatal("conflicting budget re-announcement not flagged")
	}
}
