// Golden-trace test (external test package so it can build a full machine):
// a fixed single-read workload must produce a canonical event sequence.
// Any hot-path reordering — doorbell before prep, consume outside the
// handler, a second interrupt — shows up as a golden diff at review time.
package trace_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aeolia/internal/aeodriver"
	"aeolia/internal/aeokern"
	"aeolia/internal/machine"
	"aeolia/internal/nvme"
	"aeolia/internal/sim"
	"aeolia/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// normalize renders events with simtime replaced by ordinals (T0, T1, ...)
// so the golden pins ordering and structure, not the cost model.
func normalize(evs []trace.Event) string {
	times := map[time.Duration]int{}
	var order []time.Duration
	for _, e := range evs {
		if _, ok := times[e.At]; !ok {
			times[e.At] = len(order)
			order = append(order, e.At)
		}
	}
	var sb strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&sb, "T%d %v core=%d qid=%d cid=%d lba=%d aux=%d\n",
			times[e.At], e.Type, e.Core, e.QID, int64(int32(e.CID)), e.LBA, e.Aux)
	}
	return sb.String()
}

// TestGoldenSingleRead: one 512B read at LBA 7 through the full
// user-interrupt stack on a one-core machine.
func TestGoldenSingleRead(t *testing.T) {
	tr := trace.New(1, 1<<10)
	m := machine.New(1, nvme.Config{BlockSize: 512, NumBlocks: 4096})
	defer m.Eng.Shutdown()
	m.Eng.Tracer = tr
	p, err := m.Launch("golden", aeokern.Partition{Start: 0, Blocks: 4096, Writable: true}, aeodriver.Config{Mode: aeodriver.ModeUserInterrupt})
	if err != nil {
		t.Fatal(err)
	}
	var rerr error
	m.Eng.Spawn("io", m.Eng.Core(0), func(env *sim.Env) {
		if _, e := p.Driver.CreateQP(env); e != nil {
			rerr = e
			return
		}
		rerr = p.Driver.ReadBlk(env, 7, 1, make([]byte, 512))
	})
	m.Run(0)
	if rerr != nil {
		t.Fatal(rerr)
	}

	got := normalize(tr.Events())
	golden := filepath.Join("testdata", "read512.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("trace diverged from %s (run with -update-golden if intended)\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}

	// The golden stream must also satisfy every causal invariant and
	// yield exactly one complete, handler-delivered chain.
	a := trace.Analyze(tr.Events())
	if len(a.Violations) != 0 {
		t.Fatalf("violations in single-read trace: %v", a.Violations)
	}
	if len(a.Chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(a.Chains))
	}
	for _, c := range a.Chains {
		if !c.Delivered() {
			t.Errorf("chain not delivered via handler: %+v", c)
		}
		if c.LBA != 7 {
			t.Errorf("chain LBA = %d, want 7", c.LBA)
		}
	}
}
