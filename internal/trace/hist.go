package trace

import (
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-bucketed latency histogram: values below
// histSub land in unit buckets; above that, each power-of-two range is split
// into histSub linear sub-buckets, bounding relative quantile error to
// 1/histSub (~3.1%) while keeping the bucket array small. Values are
// nanoseconds of virtual time.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // 32 linear sub-buckets per octave
	// 64-bit values need at most (64-histSubBits) octaves of histSub/2
	// upper sub-buckets beyond the initial histSub unit buckets.
	histBuckets = histSub + (64-histSubBits)*histSub/2
)

// bucketIndex maps a value to its bucket. Unit-width below histSub; above,
// octave o (values [2^o, 2^(o+1))) occupies histSub/2 sub-buckets of width
// 2^(o-histSubBits+1).
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	shift := bits.Len64(v) - histSubBits
	return shift*(histSub/2) + int(v>>uint(shift))
}

// bucketLower returns the smallest value mapping to bucket idx — the
// inverse of bucketIndex up to bucket granularity.
func bucketLower(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	shift := idx/(histSub/2) - 1
	rem := idx - shift*(histSub/2)
	return uint64(rem) << uint(shift)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min and Max are exact (tracked outside the buckets).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean is exact: the bucketed representation never loses the sum.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Percentile returns the value at or below which p percent of observations
// fall, to bucket granularity (lower bound of the containing bucket, exact
// min/max at the extremes). p is clamped to [0, 100].
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p >= 100 {
		return h.Max()
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			lo := bucketLower(i)
			if lo < h.min {
				lo = h.min
			}
			return time.Duration(lo)
		}
	}
	return h.Max()
}
