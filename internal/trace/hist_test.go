package trace

import (
	"testing"
	"time"
)

// TestBucketBoundaries pins the HDR bucket layout: unit buckets below
// histSub, then histSub/2 linear sub-buckets per power-of-two octave, with
// no gaps or overlaps at the octave seams.
func TestBucketBoundaries(t *testing.T) {
	// Unit range is the identity.
	for v := uint64(0); v < histSub; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want identity below %d", v, got, histSub)
		}
	}
	// Continuity at the seams: 31|32 and 63|64 must be adjacent buckets.
	seams := []struct {
		v    uint64
		want int
	}{
		{31, 31}, {32, 32}, {33, 32}, {63, 47}, {64, 48}, {127, 63}, {128, 64},
	}
	for _, s := range seams {
		if got := bucketIndex(s.v); got != s.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", s.v, got, s.want)
		}
	}
	// Monotone, and bucketLower is a left inverse with bounded error.
	prev := -1
	for _, v := range []uint64{0, 1, 17, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1 << 20, 1<<20 + 3, 1 << 40, (1 << 40) + (1 << 36), 1<<63 - 1, 1 << 63, ^uint64(0)} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
		lo := bucketLower(idx)
		if lo > v {
			t.Fatalf("bucketLower(bucketIndex(%d)) = %d > value", v, lo)
		}
		// Relative bucket error bounded by 2/histSub (one sub-bucket of
		// the octave).
		if v >= histSub && float64(v-lo) > float64(v)*2/histSub {
			t.Fatalf("bucket error for %d: lower bound %d too coarse", v, lo)
		}
		if idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range %d", v, idx, histBuckets)
		}
	}
}

// TestPercentilesOnKnownDistribution records 1..1000ns once each and checks
// the quantile math against the exact answers, within bucket granularity.
func TestPercentilesOnKnownDistribution(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("Min/Max = %v/%v, want 1ns/1000ns (exact)", h.Min(), h.Max())
	}
	if h.Mean() != 500 { // 500500/1000 truncated
		t.Fatalf("Mean = %v, want 500ns (exact sum)", h.Mean())
	}
	checks := []struct {
		p     float64
		exact float64
	}{{0, 1}, {50, 500}, {90, 900}, {99, 990}, {100, 1000}}
	for _, c := range checks {
		got := float64(h.Percentile(c.p))
		// Bucket lower bounds may undershoot by up to one sub-bucket
		// (2/histSub relative).
		if got > c.exact || got < c.exact*(1-2.0/histSub)-1 {
			t.Errorf("P%.0f = %.0f, want within one bucket below %.0f", c.p, got, c.exact)
		}
	}
	if h.Percentile(100) != h.Max() {
		t.Errorf("P100 = %v, want exact max %v", h.Percentile(100), h.Max())
	}
}

func TestPercentileSkewedDistribution(t *testing.T) {
	var h Histogram
	// 99 fast ops at 100ns, 1 slow at 1ms: p50/p90 must report the fast
	// mode, p99.5+ the outlier.
	for i := 0; i < 99; i++ {
		h.Record(100 * time.Nanosecond)
	}
	h.Record(time.Millisecond)
	if p := h.Percentile(50); p < 90*time.Nanosecond || p > 100*time.Nanosecond {
		t.Errorf("P50 = %v, want ~100ns", p)
	}
	if p := h.Percentile(99.5); p < 900*time.Microsecond {
		t.Errorf("P99.5 = %v, want ~1ms outlier", p)
	}
}

func TestEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamped, must not panic
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative durations must clamp to 0, got min=%v max=%v", h.Min(), h.Max())
	}
}
