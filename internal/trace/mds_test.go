package trace

import "testing"

// Clean lease lifecycle: grant → data I/O → release.
func TestMDSLeaseCleanLifecycle(t *testing.T) {
	var b evb
	b.add(0, MDSLeaseGrant, -1, 0, 100, 5, 0).
		add(1000, MDSDataIO, -1, 1, 100, 5, 4096).
		add(2000, MDSDataIO, -1, 2, 100, 5, 4096).
		add(3000, MDSLeaseRelease, -1, 0, 100, 5, 0)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("clean lease lifecycle flagged: %v", a.Violations)
	}
}

// Data I/O citing a lease that was never granted is the core violation.
func TestMDSDataIOWithoutLease(t *testing.T) {
	var b evb
	b.add(0, MDSDataIO, -1, 1, 100, 5, 4096)
	if a := Analyze(b.evs); !hasViolation(a, "data-io-without-lease") {
		t.Fatal("data i/o under unknown lease not flagged")
	}
}

func TestMDSDataIOAfterRelease(t *testing.T) {
	var b evb
	b.add(0, MDSLeaseGrant, -1, 0, 100, 5, 0).
		add(1000, MDSLeaseRelease, -1, 0, 100, 5, 0).
		add(2000, MDSDataIO, -1, 1, 100, 5, 4096)
	if a := Analyze(b.evs); !hasViolation(a, "data-io-without-lease") {
		t.Fatal("data i/o under released lease not flagged")
	}
}

// I/O between a revoke being sent and its ack is legal (the holder has not
// seen the revoke yet); I/O after the revoke completes is not.
func TestMDSDataIOAroundRevoke(t *testing.T) {
	var b evb
	b.add(0, MDSLeaseGrant, -1, 0, 100, 5, 0).
		add(1000, MDSLeaseRevoke, -1, 0, 100, 5, 0).
		add(2000, MDSDataIO, -1, 1, 100, 5, 4096)
	if a := Analyze(b.evs); len(a.Violations) != 0 {
		t.Fatalf("in-flight-revoke data i/o flagged: %v", a.Violations)
	}
	b.add(3000, MDSLeaseRevoked, -1, 0, 100, 5, 0).
		add(4000, MDSDataIO, -1, 1, 100, 5, 4096)
	if a := Analyze(b.evs); !hasViolation(a, "data-io-without-lease") {
		t.Fatal("data i/o after revoke completion not flagged")
	}
}

func TestMDSLeaseLifecycleRules(t *testing.T) {
	var b evb
	b.add(0, MDSLeaseGrant, -1, 0, 100, 5, 0).
		add(1000, MDSLeaseGrant, -1, 0, 100, 5, 0)
	if a := Analyze(b.evs); !hasViolation(a, "lease-grant-once") {
		t.Fatal("double grant not flagged")
	}
	var r evb
	r.add(0, MDSLeaseRelease, -1, 0, 200, 5, 0)
	if a := Analyze(r.evs); !hasViolation(a, "lease-lifecycle") {
		t.Fatal("release without grant not flagged")
	}
	var v evb
	v.add(0, MDSLeaseGrant, -1, 0, 300, 5, 0).
		add(1000, MDSLeaseRevoked, -1, 0, 300, 5, 0)
	if a := Analyze(v.evs); !hasViolation(a, "lease-lifecycle") {
		t.Fatal("revoke completion without a sent revoke not flagged")
	}
}

// Clean rename: destination linked, then source unlinked, then done.
func TestMDSRenameCleanOrder(t *testing.T) {
	var b evb
	b.add(0, MDSRenameLink, -1, 1, 7, 5, 0).
		add(1000, MDSRenameUnlink, -1, 0, 7, 5, 0).
		add(2000, MDSRenameDone, -1, 0, 7, 5, 0)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("clean rename flagged: %v", a.Violations)
	}
}

// Unlinking the source before the destination is linked makes the file
// momentarily invisible — the visibility violation.
func TestMDSRenameInvisibleWindow(t *testing.T) {
	var b evb
	b.add(0, MDSRenameUnlink, -1, 0, 7, 5, 0).
		add(1000, MDSRenameLink, -1, 1, 7, 5, 0).
		add(2000, MDSRenameDone, -1, 0, 7, 5, 0)
	if a := Analyze(b.evs); !hasViolation(a, "rename-visibility") {
		t.Fatal("unlink-before-link not flagged")
	}
}

func TestMDSRenameIncomplete(t *testing.T) {
	var b evb
	b.add(0, MDSRenameLink, -1, 1, 7, 5, 0).
		add(2000, MDSRenameDone, -1, 0, 7, 5, 0)
	if a := Analyze(b.evs); !hasViolation(a, "rename-visibility") {
		t.Fatal("done without unlink not flagged")
	}
}
