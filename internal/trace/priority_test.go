package trace

import (
	"testing"
	"time"
)

// Unit tests for the two PR-6 invariants: priority-ordered delivery within
// one recognition, and the urgent delivery-latency SLO bound. The event
// encodings mirror the emitters: UPIDPost carries class+1 in LBA and the
// vector in Aux; UINTRVecDeliver carries the recognition id in CID, the
// vector in LBA and the class in Aux; UINTRPreempt carries the interrupted
// depth in CID and (class<<8)|vector in Aux.

func TestAnalyzerPriorityOrderClean(t *testing.T) {
	var b evb
	// One recognition (id 7) draining urgent (0) then normal (2): legal.
	b.add(0, UINTRVecDeliver, 0, -1, 7, 3, 0).
		add(0, UINTRVecDeliver, 0, -1, 7, 9, 2)
	a := Analyze(b.evs)
	if hasViolation(a, "priority-order") {
		t.Fatalf("ordered drain flagged: %v", a.Violations)
	}
}

func TestAnalyzerPriorityInversion(t *testing.T) {
	var b evb
	// Same recognition delivers a class-2 vector, then a class-0 one that
	// must have been pending at the same poll — an inversion.
	b.add(0, UINTRVecDeliver, 0, -1, 7, 9, 2).
		add(0, UINTRVecDeliver, 0, -1, 7, 3, 0)
	a := Analyze(b.evs)
	if !hasViolation(a, "priority-order") {
		t.Fatal("priority inversion not flagged")
	}
}

func TestAnalyzerPreemptionNestsAcrossRecognitions(t *testing.T) {
	var b evb
	// A nested recognition (fresh id 8) delivering a more urgent vector
	// mid-handler forms its own group: no inversion, and the preempt event
	// inside the handler bracket is legal.
	b.add(0, UINTRVecDeliver, 0, -1, 7, 9, 2).
		add(0, HandlerEnter, 0, -1, NoCID, 0, 9).
		add(1, UINTRPreempt, 0, -1, 1, 2, 0<<8|3).
		add(1, UINTRVecDeliver, 0, -1, 8, 3, 0).
		add(1, HandlerEnter, 0, -1, NoCID, 0, 3).
		add(2, HandlerExit, 0, -1, NoCID, 0, 3).
		add(3, HandlerExit, 0, -1, NoCID, 0, 9)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("legal preemptive nesting flagged: %v", a.Violations)
	}
}

func TestAnalyzerPreemptOutsideHandler(t *testing.T) {
	var b evb
	// A preemptive delivery with no handler in progress: the bracket it
	// claims to interrupt does not exist.
	b.add(0, UINTRPreempt, 0, -1, 1, 2, 0<<8|3)
	a := Analyze(b.evs)
	if !hasViolation(a, "preempt-outside-handler") {
		t.Fatal("preempt outside any handler not flagged")
	}
}

func TestAnalyzerUnbalancedPreemptionBrackets(t *testing.T) {
	var b evb
	// The nested handler's bracket never closes: the trace ends at depth 1.
	b.add(0, HandlerEnter, 0, -1, NoCID, 0, 9).
		add(1, UINTRPreempt, 0, -1, 1, 2, 0<<8|3).
		add(1, HandlerEnter, 0, -1, NoCID, 0, 3).
		add(2, HandlerExit, 0, -1, NoCID, 0, 3)
	a := Analyze(b.evs)
	if !hasViolation(a, "handler-bracket") {
		t.Fatal("unbalanced preemption brackets not flagged")
	}
}

func TestAnalyzerSLODeliveryBound(t *testing.T) {
	bound := 200 * time.Microsecond
	mk := func(lat time.Duration) *Analyzer {
		var b evb
		// Arm a 200µs bound for class 0, post vector 3 as class 0
		// (LBA = class+1), deliver it lat later.
		b.add(0, SLOBound, -1, -1, 0, 0, uint64(bound)).
			add(0, UPIDPost, 0, -1, NoCID, 1, 3).
			add(lat, UINTRVecDeliver, 0, -1, 7, 3, 0)
		return Analyze(b.evs)
	}
	if a := mk(bound / 2); hasViolation(a, "slo-delivery-bound") {
		t.Fatalf("under-bound delivery flagged: %v", a.Violations)
	}
	if a := mk(2 * bound); !hasViolation(a, "slo-delivery-bound") {
		t.Fatal("over-bound delivery not flagged")
	}
}

func TestAnalyzerSLOBoundCoalescedPosts(t *testing.T) {
	var b evb
	bound := 200 * time.Microsecond
	// ON-bit coalescing: the earliest outstanding post starts the clock,
	// so a second post just before delivery must not reset it.
	b.add(0, SLOBound, -1, -1, 0, 0, uint64(bound)).
		add(0, UPIDPost, 0, -1, NoCID, 1, 3).
		add(300*time.Microsecond, UPIDPost, 0, -1, NoCID, 1, 3).
		add(350*time.Microsecond, UINTRVecDeliver, 0, -1, 7, 3, 0)
	a := Analyze(b.evs)
	if !hasViolation(a, "slo-delivery-bound") {
		t.Fatal("coalesced post's delivery latency not measured from the earliest post")
	}
}

func TestAnalyzerUPIDClearStopsSLOClock(t *testing.T) {
	var b evb
	bound := 200 * time.Microsecond
	// The kernel fallback path consumed the posted bitmap (UPIDClear with
	// vector 3's bit): a much later in-schedule delivery of a fresh post
	// must not be charged the stale post's latency.
	b.add(0, SLOBound, -1, -1, 0, 0, uint64(bound)).
		add(0, UPIDPost, 0, -1, NoCID, 1, 3).
		add(10*time.Microsecond, UPIDClear, 0, -1, NoCID, 0, 1<<3).
		add(time.Millisecond, UPIDPost, 0, -1, NoCID, 1, 3).
		add(time.Millisecond+50*time.Microsecond, UINTRVecDeliver, 0, -1, 7, 3, 0)
	a := Analyze(b.evs)
	if hasViolation(a, "slo-delivery-bound") {
		t.Fatalf("kernel-consumed post still charged to a later delivery: %v", a.Violations)
	}
}
