package trace

import (
	"testing"
	"time"
)

// svcChain appends a complete admitted request life to the stream:
// received, admitted, fs-op done, replied.
func (b *evb) svcChain(at time.Duration, conn int, req uint32) *evb {
	return b.
		add(at, SvcReqRecv, 0, conn, req, 0, 3).
		add(at+500, SvcAdmit, 0, conn, req, 0, 1).
		add(at+8000, SvcFSOp, 1, conn, req, 0, 4096).
		add(at+8500, SvcReply, 1, conn, req, 0, 0)
}

// shedChain appends a complete shed request life: received, shed, replied.
func (b *evb) shedChain(at time.Duration, conn int, req uint32) *evb {
	return b.
		add(at, SvcReqRecv, 0, conn, req, 0, 3).
		add(at+500, SvcShed, 0, conn, req, 0, 1).
		add(at+600, SvcReply, 0, conn, req, 0, 1)
}

func TestSvcAnalyzerCleanChains(t *testing.T) {
	var b evb
	b.svcChain(0, 7, 1).svcChain(20000, 7, 2).shedChain(40000, 8, 1)
	a := Analyze(b.evs)
	if len(a.Violations) != 0 {
		t.Fatalf("clean trace produced violations: %v", a.Violations)
	}
	if len(a.SvcChains) != 3 {
		t.Fatalf("got %d svc chains, want 3", len(a.SvcChains))
	}
	for _, c := range a.SvcChains {
		if !c.Complete() {
			t.Errorf("chain conn=%d req=%d incomplete: %+v", c.Conn, c.Req, c)
		}
	}
	shed := a.SvcChains[key(8, 1)]
	if shed == nil || !shed.Shed || shed.Admit >= 0 {
		t.Fatalf("shed chain misreconstructed: %+v", shed)
	}
}

func TestSvcAnalyzerReqIDReuse(t *testing.T) {
	var b evb
	b.svcChain(0, 7, 1).svcChain(20000, 7, 1)
	a := Analyze(b.evs)
	if !hasViolation(a, "svc-reqid-reuse") {
		t.Fatalf("duplicate request id undetected: %v", a.Violations)
	}
}

func TestSvcAnalyzerCausalOrder(t *testing.T) {
	// Admit, fs-op, and reply each without a preceding recv.
	var b evb
	b.add(0, SvcAdmit, 0, 7, 1, 0, 1)
	b.add(0, SvcFSOp, 0, 7, 2, 0, 0)
	b.add(0, SvcReply, 0, 7, 3, 0, 0)
	a := Analyze(b.evs)
	n := 0
	for _, v := range a.Violations {
		if v.Rule == "svc-causal-order" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("got %d svc-causal-order violations, want 3: %v", n, a.Violations)
	}
}

func TestSvcAnalyzerAdmitOrShed(t *testing.T) {
	var b evb
	b.add(0, SvcReqRecv, 0, 7, 1, 0, 3).
		add(100, SvcShed, 0, 7, 1, 0, 1).
		add(200, SvcAdmit, 0, 7, 1, 0, 1)
	a := Analyze(b.evs)
	if !hasViolation(a, "svc-admit-or-shed") {
		t.Fatalf("admit-after-shed undetected: %v", a.Violations)
	}

	var b2 evb
	b2.svcChain(0, 7, 1)
	b2.add(9000, SvcAdmit, 0, 7, 1, 0, 1)
	if a := Analyze(b2.evs); !hasViolation(a, "svc-admit-or-shed") {
		t.Fatalf("double admit undetected: %v", a.Violations)
	}
}

func TestSvcAnalyzerReplyExactlyOnce(t *testing.T) {
	var b evb
	b.svcChain(0, 7, 1).add(9000, SvcReply, 1, 7, 1, 0, 0)
	a := Analyze(b.evs)
	if !hasViolation(a, "svc-reply-exactly-once") {
		t.Fatalf("double reply undetected: %v", a.Violations)
	}
}

func TestNetAnalyzerDeliverWithoutSend(t *testing.T) {
	var b evb
	b.add(0, NetSend, -1, 3, NoCID, 0, 64).
		add(5000, NetDeliver, -1, 3, NoCID, 0, 64).
		add(6000, NetDeliver, -1, 3, NoCID, 0, 64)
	a := Analyze(b.evs)
	if !hasViolation(a, "net-deliver-without-send") {
		t.Fatalf("phantom delivery undetected: %v", a.Violations)
	}

	// A drop accounts against the sent budget too.
	var b2 evb
	b2.add(0, NetSend, -1, 3, NoCID, 0, 64).
		add(5000, NetDrop, -1, 3, NoCID, 0, 64).
		add(6000, NetDeliver, -1, 3, NoCID, 0, 64)
	if a := Analyze(b2.evs); !hasViolation(a, "net-deliver-without-send") {
		t.Fatalf("delivery after drop of the only send undetected: %v", a.Violations)
	}

	// Send+deliver and send+drop pairs are clean.
	var b3 evb
	b3.add(0, NetSend, -1, 3, NoCID, 0, 64).
		add(5000, NetDeliver, -1, 3, NoCID, 0, 64).
		add(6000, NetSend, -1, 3, NoCID, 0, 64).
		add(9000, NetDrop, -1, 3, NoCID, 0, 64)
	if a := Analyze(b3.evs); len(a.Violations) != 0 {
		t.Fatalf("clean net trace produced violations: %v", a.Violations)
	}
}

func TestSvcLatencyTable(t *testing.T) {
	var b evb
	for i := uint32(1); i <= 10; i++ {
		b.svcChain(time.Duration(i)*20000, 7, i)
	}
	b.shedChain(500000, 8, 1)
	a := Analyze(b.evs)
	hs := a.SvcStageHistograms()
	if got := hs[SvcStageEndToEnd].Count(); got != 10 {
		t.Fatalf("end-to-end count = %d, want 10 (shed chains excluded)", got)
	}
	if hs[SvcStageRecvToAdmit].Percentile(50) != 500 {
		t.Fatalf("recv→admit p50 = %v, want 500ns",
			hs[SvcStageRecvToAdmit].Percentile(50))
	}
	tbl := a.SvcLatencyTable()
	if len(tbl.Rows) != 4 {
		t.Fatalf("latency table has %d rows, want 4", len(tbl.Rows))
	}
}
