// Package trace is the always-on observability layer of the Aeolia
// reproduction: a lock-free, per-core ring-buffer event tracer that the
// device model (internal/nvme), the user-interrupt unit (internal/uintr,
// internal/aeokern), the driver (internal/aeodriver), and the file system
// (internal/aeofs) thread typed events through, so every I/O command's life —
// SQE prep, doorbell, device service, CQE post, interrupt raise/coalesce,
// UPID post, user-interrupt delivery, handler execution — is reconstructable
// after the fact.
//
// The tracer is installed on a sim.Engine (Engine.Tracer); every emit point
// pays exactly one nil check when tracing is off (Emit is a no-op on a nil
// *Tracer), so the hot path is unaffected in production runs — the qdsweep
// golden numbers are byte-identical with and without the package compiled in,
// because emitting consumes no virtual time.
//
// On top of the raw stream sit three consumers:
//
//   - Analyzer reconstructs per-CID causal chains and checks ordering
//     invariants (doorbell-before-device, exactly-once CQ consumption,
//     no delivery without a post, commit-after-journal-write);
//   - Histogram provides HDR-style log-bucketed per-stage latency
//     aggregation, rendered into internal/report tables;
//   - WriteChrome exports the stream as Chrome trace_event JSON
//     (chrome://tracing / Perfetto), one row per core plus one per queue.
package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Type identifies a traced event.
type Type uint8

// The event taxonomy. One event is emitted per occurrence of each point in
// the I/O path; see the per-constant comments for the meaning of the Aux
// field.
const (
	Invalid Type = iota

	// SQEPrep: a command was written into an SQ slot (CID assigned, the
	// doorbell not yet rung). Aux = NLB.
	SQEPrep
	// DoorbellWrite: an SQ tail doorbell MMIO handed commands to the
	// device. Aux = burst size (commands covered by this write).
	DoorbellWrite
	// DeviceStart: the device began processing a command. Aux = NLB.
	DeviceStart
	// DeviceDone: the device finished a command (data movement complete).
	// Aux = NVMe status code.
	DeviceDone
	// CQEPost: a completion entry became visible in the CQ. Aux = status.
	CQEPost
	// CQEConsume: the host consumed a CQE (Poll). This is the
	// exactly-once consumption point. Aux = status.
	CQEConsume
	// IRQRaise: the CQ interrupt was actually raised. Aux = number of
	// completions the raise covers (1 when coalescing is off).
	IRQRaise
	// IRQCoalesce: a completion joined an armed aggregation instead of
	// raising its own interrupt. CID names the coalesced completion.
	IRQCoalesce
	// IRQSuppress: an armed aggregation was cancelled because the host
	// drained the CQ by polling first. Aux = completions suppressed.
	IRQSuppress
	// UPIDPost: a vector was posted into a UPID and its notification
	// evaluated (the remapped MSI-X write or SENDUIPI). Core = DestCPU,
	// Aux = user vector.
	UPIDPost
	// UINTRDeliver: a notification interrupt was recognized on a core
	// (PIR transferred into UIRR). Aux = number of pending vectors
	// recognized (0 for a spurious/duplicate delivery).
	UINTRDeliver
	// HandlerEnter / HandlerExit bracket one userspace handler execution
	// (in-schedule user interrupt, or the kernel-inserted frame of the
	// out-of-schedule path). Aux = delivered user vector, or
	// KernelPathAux for kernel-path drains.
	HandlerEnter
	HandlerExit
	// JournalWrite: one journal batch (header + images + commit record)
	// reached its on-disk region. QID = journal region id, LBA = batch
	// start block, Aux = block images in the batch.
	JournalWrite
	// JournalCommit: a Sync's flush made its journal batches durable (the
	// commit point). Aux = transactions committed.
	JournalCommit
	// PagecacheFlush: a file's dirty pages were written back as a
	// vectored batch. LBA = first run's start block, Aux = dirty pages.
	PagecacheFlush

	// NetSend: a netsim link accepted a message for transmission (one
	// event per transmission, so a fault-injected duplicate emits its
	// own NetSend). QID = link id, Aux = payload bytes.
	NetSend
	// NetDeliver: a message arrived at its destination endpoint.
	// QID = link id, Aux = payload bytes.
	NetDeliver
	// NetDrop: a message was lost in flight (seeded fault injection).
	// QID = link id, Aux = payload bytes.
	NetDrop
	// SvcReqRecv: the storage service dispatcher received a request.
	// QID = connection id, CID = request id, Aux = opcode.
	SvcReqRecv
	// SvcAdmit: admission control accepted the request into the service
	// queue. QID = connection id, CID = request id, Aux = tenant id.
	SvcAdmit
	// SvcShed: admission control shed the request (rate limit or backlog
	// bound). QID = connection id, CID = request id, Aux = tenant id.
	SvcShed
	// SvcFSOp: the admitted request's file-system/KV operation finished.
	// QID = connection id, CID = request id, Aux = bytes moved.
	SvcFSOp
	// SvcReply: the service sent the response for a request. QID =
	// connection id, CID = request id, Aux = wire status code.
	SvcReply

	// CacheBudget: a memory-bounded page cache announced its byte budget
	// (emitted once, before the first charged insertion). Aux = CacheBytes.
	CacheBudget
	// CacheInsert: pages were charged against the cache budget. LBA =
	// pages charged, Aux = resident bytes after the charge.
	CacheInsert
	// CacheEvict: the CLOCK hand evicted a resident page. LBA = the page's
	// backing block (^0 if unmapped), CID = 1 if the victim was dirty and
	// written back first, 0 if clean. Aux = resident bytes after eviction.
	CacheEvict
	// ReadaheadIssue: an asynchronous read-ahead batch was submitted
	// without waiting. LBA = first block of the batch, Aux = pages.
	ReadaheadIssue
	// ReadaheadHit: a demand read consumed a page brought in by
	// read-ahead. LBA = the page's backing block, Aux = page index.
	ReadaheadHit
	// ReadaheadWaste: a read-ahead page was evicted before any demand read
	// used it. LBA = the page's backing block, Aux = page index.
	ReadaheadWaste
	// WritebackRun: one contiguous dirty run reached the device (fsync or
	// background flusher). LBA = run start block, Aux = pages in the run.
	WritebackRun

	// UINTRVecDeliver: one classed user vector was delivered to the user
	// handler (emitted only when a priority ClassMap is installed on the
	// UPID). CID = recognition id (grouping the deliveries drained by one
	// poll of the PIR), LBA = user vector, Aux = priority class.
	UINTRVecDeliver
	// UINTRPreempt: a more urgent vector's delivery preempted an
	// in-progress lower-class handler (nested delivery). CID = nesting
	// depth at the preemption, LBA = the preempted handler's class,
	// Aux = class<<8 | vector of the preempting delivery.
	UINTRPreempt
	// UPIDClear: the kernel-path (out-of-schedule) fallback consumed a
	// UPID's posted bitmap without per-vector deliveries. Core = DestCPU,
	// Aux = the PIR bitmap taken.
	UPIDClear
	// SLOBound: an experiment announced the delivery-latency bound for a
	// priority class (emitted before load, once per bounded class).
	// CID = class, Aux = bound in nanoseconds.
	SLOBound
	// IRQBypass: an urgent-class completion bypassed the armed CQ
	// aggregation and raised its interrupt immediately. CID = the urgent
	// completion, Aux = completions covered by the immediate raise.
	IRQBypass

	// RaftLeader: a node won an election for a placement group. QID =
	// placement group, CID = node id, Aux = term.
	RaftLeader
	// RaftAccept: a node appended (stored durably) a raft entry. QID =
	// placement group, CID = node id, LBA = log index, Aux = entry term.
	RaftAccept
	// RaftCommit: a node advanced its commit index. QID = placement group,
	// CID = node id, LBA = new commit index.
	RaftCommit
	// RaftApply: a node applied a committed entry to its block store.
	// QID = placement group, CID = node id, LBA = log index, Aux = a hash
	// of the entry payload (identical across replicas or the logs diverged).
	RaftApply
	// RaftRestart: a node rebuilt a raft group from stable storage after a
	// crash (volatile state — commit/applied — resets). QID = placement
	// group, CID = node id.
	RaftRestart
	// ClusterPG: the monitor announced a placement group's membership
	// (emitted once per group before traffic). QID = placement group,
	// Aux = replication factor.
	ClusterPG
	// ClusterAck: the client received a write acknowledgement. QID =
	// placement group, CID = request id, LBA = block address, Aux =
	// raft index << 32 | payload hash (low 32 bits).
	ClusterAck
	// ClusterReadStart: the client issued a read (the linearizability
	// clock's start point). QID = placement group, CID = request id,
	// LBA = block address.
	ClusterReadStart
	// ClusterRead: the leader served a read at apply time. QID = placement
	// group, CID = request id, LBA = block address, Aux = the serving
	// entry's raft index << 32 | returned-data hash (low 32 bits).
	ClusterRead

	// MDSOp: a metadata shard completed one namespace operation. QID =
	// shard, LBA = ino concerned (0 if none), Aux = opcode.
	MDSOp
	// MDSLeaseGrant: an open granted a layout lease. QID = shard,
	// CID = lease id, LBA = ino.
	MDSLeaseGrant
	// MDSLeaseRelease: the holder released its lease (file close). QID =
	// shard, CID = lease id, LBA = ino.
	MDSLeaseRelease
	// MDSLeaseRevoke: the shard sent a revoke for a lease (unlink,
	// truncate, rename-over). QID = shard, CID = lease id, LBA = ino.
	MDSLeaseRevoke
	// MDSLeaseRevoked: the holder's revoke ack was processed — the lease is
	// dead; data I/O under it after this point is a violation. QID = shard,
	// CID = lease id, LBA = ino.
	MDSLeaseRevoked
	// MDSDataIO: a client issued a data read/write directly to a data node
	// under a layout lease. QID = data node index, CID = lease id,
	// LBA = ino, Aux = bytes.
	MDSDataIO
	// MDSRenameLink: a rename made the file visible at the destination
	// name. QID = shard owning the destination, CID = rename txn id,
	// LBA = ino.
	MDSRenameLink
	// MDSRenameUnlink: a rename removed the source name (after the
	// destination was linked — the "never invisible" order). QID = shard
	// owning the source, CID = rename txn id, LBA = ino.
	MDSRenameUnlink
	// MDSRenameDone: the rename completed and was acknowledged to the
	// client. QID = shard owning the source, CID = rename txn id,
	// LBA = ino.
	MDSRenameDone

	// CopyBudget: a datapath announced the copy budget for one traced path
	// (emitted once per path, before the path's first chain). QID = path id
	// (the Path* constants), Aux = the maximum data copies any one chain on
	// the path may perform.
	CopyBudget
	// BufCopy: one chain on a traced path copied payload bytes between
	// buffers (the thing the zero-copy datapath is eliminating). QID =
	// path id, CID = chain id (one per read/write operation), Aux = bytes.
	BufCopy
	// BufHandoff: buffer ownership moved between datapath stages without a
	// copy — the single-owner handoff. QID = path id, CID = chain id,
	// Aux = from-stage<<8 | to-stage (the iobuf.Stage codes).
	BufHandoff

	numTypes
)

// The traced datapath identifiers for CopyBudget/BufCopy/BufHandoff events.
// Each names one end-to-end chain shape with its own copy budget.
const (
	// PathFSRead: aeofs buffered read — device DMA lands in the page
	// cache's own buffers, one copy page → user buffer.
	PathFSRead = 1
	// PathFSWrite: aeofs buffered write — one copy user buffer → page.
	PathFSWrite = 2
	// PathWriteback: dirty-page write-back — pages are submitted to the
	// device as a gather batch, zero copies.
	PathWriteback = 3
	// PathSvcRead: storage-service OpRead — the FS read's copy lands
	// directly in the reply frame's payload region, so the service edge
	// adds zero copies of its own (budget covers the whole chain).
	PathSvcRead = 4
)

// NoCID marks an event that does not concern a specific command.
const NoCID = ^uint32(0)

// KernelPathAux is the HandlerEnter/Exit Aux value marking a kernel-path
// (out-of-schedule) completion drain rather than an in-schedule user
// interrupt handler.
const KernelPathAux = ^uint64(0)

var typeNames = [numTypes]string{
	Invalid:        "Invalid",
	SQEPrep:        "SQEPrep",
	DoorbellWrite:  "DoorbellWrite",
	DeviceStart:    "DeviceStart",
	DeviceDone:     "DeviceDone",
	CQEPost:        "CQEPost",
	CQEConsume:     "CQEConsume",
	IRQRaise:       "IRQRaise",
	IRQCoalesce:    "IRQCoalesce",
	IRQSuppress:    "IRQSuppress",
	UPIDPost:       "UPIDPost",
	UINTRDeliver:   "UINTRDeliver",
	HandlerEnter:   "HandlerEnter",
	HandlerExit:    "HandlerExit",
	JournalWrite:   "JournalWrite",
	JournalCommit:  "JournalCommit",
	PagecacheFlush: "PagecacheFlush",
	NetSend:        "NetSend",
	NetDeliver:     "NetDeliver",
	NetDrop:        "NetDrop",
	SvcReqRecv:     "SvcReqRecv",
	SvcAdmit:       "SvcAdmit",
	SvcShed:        "SvcShed",
	SvcFSOp:        "SvcFSOp",
	SvcReply:       "SvcReply",
	CacheBudget:    "CacheBudget",
	CacheInsert:    "CacheInsert",
	CacheEvict:     "CacheEvict",
	ReadaheadIssue: "ReadaheadIssue",
	ReadaheadHit:   "ReadaheadHit",
	ReadaheadWaste: "ReadaheadWaste",
	WritebackRun:   "WritebackRun",

	UINTRVecDeliver: "UINTRVecDeliver",
	UINTRPreempt:    "UINTRPreempt",
	UPIDClear:       "UPIDClear",
	SLOBound:        "SLOBound",
	IRQBypass:       "IRQBypass",

	RaftLeader:       "RaftLeader",
	RaftAccept:       "RaftAccept",
	RaftCommit:       "RaftCommit",
	RaftApply:        "RaftApply",
	RaftRestart:      "RaftRestart",
	ClusterPG:        "ClusterPG",
	ClusterAck:       "ClusterAck",
	ClusterReadStart: "ClusterReadStart",
	ClusterRead:      "ClusterRead",

	MDSOp:           "MDSOp",
	MDSLeaseGrant:   "MDSLeaseGrant",
	MDSLeaseRelease: "MDSLeaseRelease",
	MDSLeaseRevoke:  "MDSLeaseRevoke",
	MDSLeaseRevoked: "MDSLeaseRevoked",
	MDSDataIO:       "MDSDataIO",
	MDSRenameLink:   "MDSRenameLink",
	MDSRenameUnlink: "MDSRenameUnlink",
	MDSRenameDone:   "MDSRenameDone",

	CopyBudget: "CopyBudget",
	BufCopy:    "BufCopy",
	BufHandoff: "BufHandoff",
}

func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Event is one traced occurrence. Core, QID, and CID are -1/NoCID when the
// event does not concern a core, queue, or command; Aux is type-specific
// (see the Type constants).
type Event struct {
	Seq  uint64        // global emission order (1-based)
	At   time.Duration // virtual time of the occurrence
	Type Type
	Core int32
	QID  int32
	CID  uint32
	LBA  uint64
	Aux  uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%v core=%d qid=%d cid=%d lba=%d aux=%d",
		e.Type, e.Core, e.QID, int64(int32(e.CID)), e.LBA, e.Aux)
}

// ring is one fixed-capacity overwriting event buffer. The cursor is a
// monotone count of events ever written; slot i holds event (n-1) mod cap.
type ring struct {
	buf []Event
	n   atomic.Uint64
	// Pad cursors of adjacent rings onto separate cache lines so per-core
	// emitters do not false-share.
	_ [48]byte
}

// Tracer collects events into per-core rings (plus one shared ring for
// device/global context). Emission is lock-free: one atomic add on the
// global sequence, one on the ring cursor. A nil *Tracer is a valid sink
// whose Emit is a no-op — the disabled fast path.
//
// Snapshots (Events, Dropped) must not race with emission; in the simulator
// this holds by construction because callers snapshot after Engine.Run
// returns (the engine serializes all emitting contexts).
type Tracer struct {
	seq   atomic.Uint64
	chain atomic.Uint32
	rings []ring
}

// NextChain allocates a copy-chain id (for BufCopy/BufHandoff CIDs) unique
// across every emitter sharing this tracer — multiple FS mounts or service
// instances on one engine can never collide. Returns NoCID on a nil tracer
// so disabled-tracing paths can skip their emissions.
func (tr *Tracer) NextChain() uint32 {
	if tr == nil {
		return NoCID
	}
	return tr.chain.Add(1)
}

// New creates a tracer for a machine with the given core count; perRing is
// each ring's capacity in events (default 1<<16). Ring 0 receives events
// with no core context (device, journal); ring i+1 receives core i's.
func New(cores, perRing int) *Tracer {
	if cores < 0 {
		cores = 0
	}
	if perRing <= 0 {
		perRing = 1 << 16
	}
	tr := &Tracer{rings: make([]ring, cores+1)}
	for i := range tr.rings {
		tr.rings[i].buf = make([]Event, perRing)
	}
	return tr
}

// Emit records one event. Safe (and free) on a nil tracer.
func (tr *Tracer) Emit(at time.Duration, typ Type, core, qid int, cid uint32, lba, aux uint64) {
	if tr == nil {
		return
	}
	r := &tr.rings[0]
	if core >= 0 && core < len(tr.rings)-1 {
		r = &tr.rings[core+1]
	}
	seq := tr.seq.Add(1)
	i := (r.n.Add(1) - 1) % uint64(len(r.buf))
	r.buf[i] = Event{Seq: seq, At: at, Type: typ, Core: int32(core), QID: int32(qid), CID: cid, LBA: lba, Aux: aux}
}

// Len returns the total number of events emitted (including overwritten
// ones).
func (tr *Tracer) Len() uint64 {
	if tr == nil {
		return 0
	}
	return tr.seq.Load()
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	var d uint64
	for i := range tr.rings {
		n := tr.rings[i].n.Load()
		if c := uint64(len(tr.rings[i].buf)); n > c {
			d += n - c
		}
	}
	return d
}

// Events returns every retained event in global emission order.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	var out []Event
	for i := range tr.rings {
		r := &tr.rings[i]
		n := r.n.Load()
		if c := uint64(len(r.buf)); n > c {
			n = c
		}
		out = append(out, r.buf[:n]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset discards all retained events and restarts the sequence.
func (tr *Tracer) Reset() {
	if tr == nil {
		return
	}
	tr.seq.Store(0)
	tr.chain.Store(0)
	for i := range tr.rings {
		tr.rings[i].n.Store(0)
	}
}
