package trace

import (
	"testing"
	"time"
)

func TestEventsMergeInEmissionOrder(t *testing.T) {
	tr := New(2, 16)
	// Interleave emissions across the device ring (core -1) and two core
	// rings; Events must return them in global emission order.
	tr.Emit(0, SQEPrep, -1, 1, 1, 10, 1)
	tr.Emit(1, UPIDPost, 0, -1, NoCID, 0, 3)
	tr.Emit(2, CQEPost, -1, 1, 1, 0, 0)
	tr.Emit(3, UINTRDeliver, 1, -1, NoCID, 0, 1)
	tr.Emit(4, HandlerEnter, 0, -1, NoCID, 0, 3)

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	want := []Type{SQEPrep, UPIDPost, CQEPost, UINTRDeliver, HandlerEnter}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Type != want[i] {
			t.Errorf("event %d: Type = %v, want %v", i, e.Type, want[i])
		}
	}
	if tr.Len() != 5 || tr.Dropped() != 0 {
		t.Errorf("Len/Dropped = %d/%d, want 5/0", tr.Len(), tr.Dropped())
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	tr := New(0, 4) // one ring, capacity 4
	for i := 0; i < 10; i++ {
		tr.Emit(time.Duration(i), CQEPost, -1, 0, uint32(i), 0, 0)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint32(6 + i); e.CID != want {
			t.Errorf("retained event %d: CID = %d, want %d (newest survive)", i, e.CID, want)
		}
	}
}

func TestCoreRoutingAndOutOfRangeCores(t *testing.T) {
	tr := New(1, 8)
	tr.Emit(0, SQEPrep, -1, 0, 1, 0, 0) // device ring
	tr.Emit(0, UPIDPost, 0, -1, NoCID, 0, 0)
	tr.Emit(0, UPIDPost, 99, -1, NoCID, 0, 0) // out of range -> ring 0
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("got %d events, want 3", got)
	}
	if tr.rings[0].n.Load() != 2 || tr.rings[1].n.Load() != 1 {
		t.Errorf("ring fills = %d/%d, want 2/1",
			tr.rings[0].n.Load(), tr.rings[1].n.Load())
	}
}

func TestNilTracerIsANoOpSink(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, SQEPrep, 0, 0, 0, 0, 0) // must not panic
	tr.Reset()
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report an empty trace")
	}
}

func TestReset(t *testing.T) {
	tr := New(1, 8)
	tr.Emit(0, SQEPrep, -1, 0, 1, 0, 0)
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Len() != 0 {
		t.Fatal("Reset must discard all events")
	}
	tr.Emit(0, SQEPrep, -1, 0, 2, 0, 0)
	if evs := tr.Events(); len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatal("sequence must restart after Reset")
	}
}

// BenchmarkEmitDisabled measures the nil-sink fast path — the cost every
// emit point pays in production runs with tracing off. This must stay in
// the single-nanosecond range so the qdsweep hot path is unaffected.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Emit(0, CQEPost, -1, 0, uint32(i), 0, 0)
	}
}

// BenchmarkEmitEnabled measures the enabled path: two atomic adds and a
// slot store.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, CQEPost, -1, 0, uint32(i), 0, 0)
	}
}
