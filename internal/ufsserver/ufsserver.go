// Package ufsserver models uFS (Liu et al., SOSP'21), the polling-based
// semi-microkernel file system Aeolia is compared against (§2.2): the file
// system runs as a standalone server with a small number of dedicated
// worker threads that busy-poll request queues over SPDK; applications talk
// to it through IPC costing hundreds of nanoseconds per crossing; all
// operations on a file are assigned to a single worker, and all metadata
// operations funnel through a global master thread — the design that avoids
// locking inside asynchronous event handlers at the price of scalability.
package ufsserver

import (
	"time"

	"aeolia/internal/aeofs"
	"aeolia/internal/sim"
	"aeolia/internal/timing"
	"aeolia/internal/vfs"
)

// request is one IPC'd file system request.
type request struct {
	fn   func(env *sim.Env)
	done *sim.Completion
}

// worker is one dedicated uFS server thread: it spins on its request queue
// (and would poll SPDK completion queues between requests).
type worker struct {
	id     int
	queue  []*request
	signal *sim.Completion
	task   *sim.Task

	// Ops counts serviced requests.
	Ops uint64
	// BusyTime accumulates time spent servicing (vs. spinning).
	BusyTime time.Duration
}

// Server is a uFS instance: dedicated workers over a private AeoFS
// substrate (whose driver should use ModePoll — SPDK).
type Server struct {
	inner   *aeofs.FS
	workers []*worker

	// perWorkerCost is the server-side request handling overhead
	// (dispatch, completion posting) per op.
	perWorkerCost time.Duration

	stopped bool
}

// New creates a uFS server with one worker per given core and starts the
// worker tasks. Worker 0 is the metadata master.
func New(eng *sim.Engine, cores []*sim.Core, inner *aeofs.FS) *Server {
	s := &Server{inner: inner, perWorkerCost: 300 * time.Nanosecond}
	for i, c := range cores {
		w := &worker{id: i, signal: sim.NewCompletion()}
		s.workers = append(s.workers, w)
		w.task = eng.Spawn("ufs-worker", c, func(env *sim.Env) {
			// Workers create their own SPDK queue pair and then
			// poll forever.
			if _, err := inner.Driver().CreateQP(env); err != nil {
				panic("ufs worker init: " + err.Error())
			}
			s.workerLoop(env, w)
		})
	}
	return s
}

// Stop terminates the worker tasks (after the workload drains) so engine
// runs can complete.
func (s *Server) Stop() {
	s.stopped = true
	for _, w := range s.workers {
		w.signal.Fire()
	}
}

// workerLoop busy-polls the queue: uFS workers never sleep (until Stop).
func (s *Server) workerLoop(env *sim.Env, w *worker) {
	for {
		if s.stopped {
			return
		}
		if len(w.queue) == 0 {
			w.signal = sim.NewCompletion()
			env.SpinWait(w.signal)
			continue
		}
		req := w.queue[0]
		w.queue = w.queue[1:]
		start := env.Now()
		env.Exec(s.perWorkerCost)
		req.fn(env)
		w.Ops++
		w.BusyTime += env.Now() - start
		req.done.Fire()
	}
}

// submit IPCs a request to worker w and waits for the reply. The client
// pays the IPC crossing cost each way and polls for the response, as the
// uFS client library does.
func (s *Server) submit(env *sim.Env, wi int, fn func(env *sim.Env)) {
	w := s.workers[wi%len(s.workers)]
	env.Exec(timing.IPC) // marshal + enqueue + doorbell
	req := &request{fn: fn, done: sim.NewCompletion()}
	w.queue = append(w.queue, req)
	w.signal.Fire()
	env.SpinWait(req.done)
	env.Exec(timing.IPC / 2) // read the response
}

// Workers returns the worker states (for reporting).
func (s *Server) Workers() []*worker { return s.workers }

// Client is a process's uFS client library: it implements vfs.FileSystem by
// IPC-ing every operation to the server.
type Client struct {
	srv *Server
	// fdRoute remembers which worker owns each open fd's file.
	fdRoute map[int]int
}

var _ vfs.FileSystem = (*Client)(nil)

// NewClient returns a client library handle for the server.
func NewClient(srv *Server) *Client {
	return &Client{srv: srv, fdRoute: make(map[int]int)}
}

// Name implements vfs.FileSystem.
func (c *Client) Name() string { return "ufs" }

// route returns the worker owning a file (by inode number); metadata
// operations always go to the master (worker 0).
func (c *Client) route(ino uint64) int {
	return int(ino) % len(c.srv.workers)
}

const master = 0

// Open implements vfs.FileSystem: path resolution and creation are metadata
// work on the master; the fd is then routed to the file's owner worker.
func (c *Client) Open(env *sim.Env, path string, flags int) (int, error) {
	var fd int
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		fd, err = c.srv.inner.Open(wenv, path, flags)
	})
	if err != nil {
		return -1, err
	}
	var info aeofs.Inode
	c.srv.submit(env, master, func(wenv *sim.Env) {
		info, err = c.srv.inner.FStat(wenv, fd)
	})
	if err != nil {
		return -1, err
	}
	c.fdRoute[fd] = c.route(info.Ino)
	return fd, nil
}

// Close implements vfs.FileSystem.
func (c *Client) Close(env *sim.Env, fd int) error {
	var err error
	c.srv.submit(env, c.fdRoute[fd], func(wenv *sim.Env) {
		err = c.srv.inner.Close(wenv, fd)
	})
	delete(c.fdRoute, fd)
	return err
}

// Read implements vfs.FileSystem.
func (c *Client) Read(env *sim.Env, fd int, buf []byte) (int, error) {
	var n int
	var err error
	c.srv.submit(env, c.fdRoute[fd], func(wenv *sim.Env) {
		n, err = c.srv.inner.Read(wenv, fd, buf)
	})
	return n, err
}

// ReadAt implements vfs.FileSystem.
func (c *Client) ReadAt(env *sim.Env, fd int, buf []byte, off uint64) (int, error) {
	var n int
	var err error
	c.srv.submit(env, c.fdRoute[fd], func(wenv *sim.Env) {
		n, err = c.srv.inner.ReadAt(wenv, fd, buf, off)
	})
	return n, err
}

// Write implements vfs.FileSystem.
func (c *Client) Write(env *sim.Env, fd int, buf []byte) (int, error) {
	var n int
	var err error
	c.srv.submit(env, c.fdRoute[fd], func(wenv *sim.Env) {
		n, err = c.srv.inner.Write(wenv, fd, buf)
	})
	return n, err
}

// WriteAt implements vfs.FileSystem.
func (c *Client) WriteAt(env *sim.Env, fd int, buf []byte, off uint64) (int, error) {
	var n int
	var err error
	c.srv.submit(env, c.fdRoute[fd], func(wenv *sim.Env) {
		n, err = c.srv.inner.WriteAt(wenv, fd, buf, off)
	})
	return n, err
}

// Seek implements vfs.FileSystem.
func (c *Client) Seek(env *sim.Env, fd int, off uint64) error {
	var err error
	c.srv.submit(env, c.fdRoute[fd], func(wenv *sim.Env) {
		err = c.srv.inner.Seek(wenv, fd, off)
	})
	return err
}

// Fsync implements vfs.FileSystem.
func (c *Client) Fsync(env *sim.Env, fd int) error {
	var err error
	c.srv.submit(env, c.fdRoute[fd], func(wenv *sim.Env) {
		err = c.srv.inner.Fsync(wenv, fd)
	})
	return err
}

// Stat implements vfs.FileSystem (metadata: master).
func (c *Client) Stat(env *sim.Env, path string) (vfs.FileInfo, error) {
	var in aeofs.Inode
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		in, err = c.srv.inner.Stat(wenv, path)
	})
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return vfs.FileInfo{
		Ino:   in.Ino,
		Dir:   in.Type == aeofs.TypeDir,
		Size:  in.Size,
		Nlink: in.Nlink,
		MTime: time.Duration(in.MTimeNS),
	}, nil
}

// Mkdir implements vfs.FileSystem (metadata: master).
func (c *Client) Mkdir(env *sim.Env, path string) error {
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		err = c.srv.inner.Mkdir(wenv, path)
	})
	return err
}

// Rmdir implements vfs.FileSystem (metadata: master).
func (c *Client) Rmdir(env *sim.Env, path string) error {
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		err = c.srv.inner.Rmdir(wenv, path)
	})
	return err
}

// Unlink implements vfs.FileSystem (metadata: master).
func (c *Client) Unlink(env *sim.Env, path string) error {
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		err = c.srv.inner.Unlink(wenv, path)
	})
	return err
}

// Rename implements vfs.FileSystem (metadata: master).
func (c *Client) Rename(env *sim.Env, src, dst string) error {
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		err = c.srv.inner.Rename(wenv, src, dst)
	})
	return err
}

// ReadDir implements vfs.FileSystem (metadata: master).
func (c *Client) ReadDir(env *sim.Env, path string) ([]vfs.Dirent, error) {
	var ds []aeofs.Dirent
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		ds, err = c.srv.inner.ReadDir(wenv, path)
	})
	if err != nil {
		return nil, err
	}
	out := make([]vfs.Dirent, len(ds))
	for i, d := range ds {
		out[i] = vfs.Dirent{Ino: d.Ino, Name: d.Name}
	}
	return out, nil
}

// Truncate implements vfs.FileSystem (metadata: master).
func (c *Client) Truncate(env *sim.Env, path string, size uint64) error {
	var err error
	c.srv.submit(env, master, func(wenv *sim.Env) {
		err = c.srv.inner.Truncate(wenv, path, size)
	})
	return err
}
