package ufsserver_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"aeolia/internal/aeofs"
	"aeolia/internal/machine"
	"aeolia/internal/nvme"
	"aeolia/internal/sim"
	"aeolia/internal/vfs"
	"aeolia/internal/workload"
)

func buildUFS(t *testing.T, appCores, workers int) (*machine.Machine, *machine.FSInstance, []*sim.Core) {
	t.Helper()
	m := machine.New(appCores+workers, nvme.Config{BlockSize: aeofs.BlockSize, NumBlocks: 1 << 16})
	t.Cleanup(m.Eng.Shutdown)
	opt := machine.FSOptions{}
	for i := 0; i < workers; i++ {
		opt.UFSWorkerCores = append(opt.UFSWorkerCores, m.Eng.Core(appCores+i))
	}
	fi, err := m.BuildFS(machine.KindUFS, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fi.UFS.Stop)
	cs := make([]*sim.Core, appCores)
	for i := range cs {
		cs[i] = m.Eng.Core(i)
	}
	return m, fi, cs
}

func TestUFSBasicIO(t *testing.T) {
	m, fi, cores := buildUFS(t, 1, 2)
	fs := fi.NewUFSClient()
	var got []byte
	var rerr error
	done := false
	m.Eng.Spawn("client", cores[0], func(env *sim.Env) {
		defer func() { done = true }()
		fs.Mkdir(env, "/d")
		fd, err := fs.Open(env, "/d/f", vfs.O_CREATE|vfs.O_RDWR)
		if err != nil {
			rerr = err
			return
		}
		data := bytes.Repeat([]byte{7}, 10000)
		if _, err := fs.Write(env, fd, data); err != nil {
			rerr = err
			return
		}
		if err := fs.Fsync(env, fd); err != nil {
			rerr = err
			return
		}
		buf := make([]byte, 10000)
		if _, err := fs.ReadAt(env, fd, buf, 0); err != nil {
			rerr = err
			return
		}
		got = buf
		fs.Close(env, fd)
	})
	for !done && m.Eng.Now() < 10*time.Second {
		m.Eng.Run(m.Eng.Now() + 50*time.Millisecond)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	if got == nil || got[0] != 7 || got[9999] != 7 {
		t.Fatal("round trip through uFS failed")
	}
}

// TestIPCCostVisible: every uFS op pays the ~600ns IPC round trip on top of
// the underlying work, so a metadata op through uFS must be slower than the
// same op through AeoFS directly.
func TestIPCCostVisible(t *testing.T) {
	statTime := func(kind machine.FSKind) time.Duration {
		m := machine.New(3, nvme.Config{BlockSize: aeofs.BlockSize, NumBlocks: 1 << 16})
		defer m.Eng.Shutdown()
		opt := machine.FSOptions{}
		if kind == machine.KindUFS {
			opt.UFSWorkerCores = []*sim.Core{m.Eng.Core(1), m.Eng.Core(2)}
		}
		fi, err := m.BuildFS(kind, opt)
		if err != nil {
			t.Fatal(err)
		}
		if fi.UFS != nil {
			defer fi.UFS.Stop()
		}
		fs := fi.FS
		if kind == machine.KindUFS {
			fs = fi.NewUFSClient()
		}
		var dur time.Duration
		done := false
		m.Eng.Spawn("client", m.Eng.Core(0), func(env *sim.Env) {
			defer func() { done = true }()
			if init, ok := fs.(vfs.PerThreadInit); ok {
				init.InitThread(env)
			}
			fd, err := fs.Open(env, "/probe", vfs.O_CREATE|vfs.O_RDWR)
			if err != nil {
				t.Error(err)
				return
			}
			fs.Close(env, fd)
			start := env.Now()
			for i := 0; i < 100; i++ {
				fs.Stat(env, "/probe")
			}
			dur = env.Now() - start
		})
		for !done && m.Eng.Now() < 10*time.Second {
			m.Eng.Run(m.Eng.Now() + 50*time.Millisecond)
		}
		return dur
	}
	direct := statTime(machine.KindAeoFS)
	viaUFS := statTime(machine.KindUFS)
	if viaUFS <= direct {
		t.Fatalf("uFS stat (%v) should be slower than direct AeoFS (%v)", viaUFS, direct)
	}
	perOpExtra := (viaUFS - direct) / 100
	if perOpExtra < 500*time.Nanosecond {
		t.Fatalf("per-op uFS overhead = %v, want >= 500ns (IPC)", perOpExtra)
	}
}

// TestMetadataMasterIsBottleneck: metadata throughput must NOT scale with
// client threads (everything funnels to worker 0).
func TestMetadataMasterIsBottleneck(t *testing.T) {
	create := func(threads int) float64 {
		m, fi, cores := buildUFS(t, threads, 4)
		spec := &workload.ParallelSpec{
			Eng: m.Eng, Cores: cores,
			FSFor: func(int) vfs.FileSystem { return fi.NewUFSClient() },
			Body: func(env *sim.Env, fs vfs.FileSystem, tid int) (*workload.Result, error) {
				res := &workload.Result{}
				start := env.Now()
				for i := 0; i < 60; i++ {
					fd, err := fs.Open(env, fmt.Sprintf("/t%d-%d", tid, i), vfs.O_CREATE|vfs.O_RDWR)
					if err != nil {
						return nil, err
					}
					if err := fs.Close(env, fd); err != nil {
						return nil, err
					}
					res.Ops++
				}
				res.Elapsed = env.Now() - start
				return res, nil
			},
			Horizon: 5 * time.Minute,
		}
		res, _, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.OpsPerSec()
	}
	one := create(1)
	eight := create(8)
	if eight > 2.5*one {
		t.Fatalf("uFS creates scaled %.1fx with 8 threads (%.0f -> %.0f ops/s); master bottleneck missing",
			eight/one, one, eight)
	}
}

// TestWorkerStatsAccumulate sanity-checks server-side accounting.
func TestWorkerStatsAccumulate(t *testing.T) {
	m, fi, cores := buildUFS(t, 1, 2)
	fs := fi.NewUFSClient()
	done := false
	m.Eng.Spawn("client", cores[0], func(env *sim.Env) {
		defer func() { done = true }()
		for i := 0; i < 10; i++ {
			fd, _ := fs.Open(env, fmt.Sprintf("/w%d", i), vfs.O_CREATE|vfs.O_RDWR)
			fs.Write(env, fd, make([]byte, 4096))
			fs.Close(env, fd)
		}
	})
	for !done && m.Eng.Now() < 10*time.Second {
		m.Eng.Run(m.Eng.Now() + 50*time.Millisecond)
	}
	var total uint64
	for _, w := range fi.UFS.Workers() {
		total += w.Ops
	}
	if total < 30 {
		t.Fatalf("workers serviced only %d ops", total)
	}
}
