package uintr

// Class is a user-interrupt delivery priority class. Lower values are more
// urgent: ClassUrgent outranks everything, ClassBulk yields to everything.
// The 64-vector PIR is partitioned into classes by a ClassMap; delivery
// (DeliverPending) drains strictly highest-class-first, and a post in a
// more urgent class may preempt an in-progress lower-class handler.
type Class uint8

const (
	// ClassUrgent is latency-critical traffic: it bypasses CQ interrupt
	// aggregation and preempts in-progress lower-class handlers.
	ClassUrgent Class = iota
	// ClassHigh is interactive traffic (e.g. service request reception).
	ClassHigh
	// ClassNormal is the default class; vectors of a UPID without a
	// ClassMap all behave as ClassNormal.
	ClassNormal
	// ClassBulk is background/batch traffic, delivered after everything
	// else pending.
	ClassBulk

	// NumClasses is the number of priority classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassUrgent:
		return "urgent"
	case ClassHigh:
		return "high"
	case ClassNormal:
		return "normal"
	case ClassBulk:
		return "bulk"
	}
	return "class?"
}

// ClassMap partitions a UPID's 64 user vectors into priority classes. A nil
// *ClassMap is valid everywhere and treats every vector as ClassNormal —
// the legacy class-less behavior.
type ClassMap struct {
	class [MaxVectors]Class
}

// NewClassMap returns a map assigning every vector to def.
func NewClassMap(def Class) *ClassMap {
	m := &ClassMap{}
	for i := range m.class {
		m.class[i] = def
	}
	return m
}

// Set assigns vector to class c; it returns the map for chaining.
func (m *ClassMap) Set(vector uint8, c Class) *ClassMap {
	m.class[vector] = c
	return m
}

// Of returns vector's class. A nil map puts every vector in ClassNormal.
func (m *ClassMap) Of(vector uint8) Class {
	if m == nil {
		return ClassNormal
	}
	return m.class[vector]
}

// Mask returns the bitmap of vectors assigned to class c.
func (m *ClassMap) Mask(c Class) uint64 {
	if m == nil {
		if c == ClassNormal {
			return ^uint64(0)
		}
		return 0
	}
	var bits uint64
	for v := 0; v < MaxVectors; v++ {
		if m.class[v] == c {
			bits |= uint64(1) << v
		}
	}
	return bits
}

// MinClass returns the most urgent class among the set bits of pir, and
// whether pir had any bit set.
func (m *ClassMap) MinClass(pir uint64) (Class, bool) {
	if pir == 0 {
		return 0, false
	}
	if m == nil {
		return ClassNormal, true
	}
	best := NumClasses
	for v := 0; v < MaxVectors; v++ {
		if pir&(uint64(1)<<v) != 0 && m.class[v] < best {
			best = m.class[v]
		}
	}
	return best, true
}
