package uintr_test

import (
	"testing"

	"aeolia/internal/sim"
	"aeolia/internal/uintr"
)

// TestOutstandingNotificationCoalesces: while a notification is outstanding
// (ON set, PIR not yet recognized), further posts accumulate in the PIR
// without raising additional physical interrupts; recognition drains every
// accumulated vector with the one delivery and re-arms notification.
func TestOutstandingNotificationCoalesces(t *testing.T) {
	e := sim.NewEngine(1, nil)
	raised := 0
	e.Core(0).SetIRQHandler(func(ctx *sim.IRQCtx, vec int) { raised++ })
	u := &uintr.UPID{NV: 0xec, DestCPU: 0}

	uintr.PostAndNotify(e, u, 0)
	if raised != 1 || !u.ON {
		t.Fatalf("first post: raised=%d ON=%v, want 1/true", raised, u.ON)
	}
	// Two more completions arrive before the core recognizes the first.
	uintr.PostAndNotify(e, u, 1)
	uintr.PostAndNotify(e, u, 2)
	if raised != 1 {
		t.Fatalf("raised = %d with ON set, want still 1 (coalesced)", raised)
	}
	if u.NotifySent.Load() != 1 || u.NotifySuppressed.Load() != 2 {
		t.Fatalf("NotifySent/NotifySuppressed = %d/%d, want 1/2", u.NotifySent.Load(), u.NotifySuppressed.Load())
	}
	if u.PIR != 0b111 {
		t.Fatalf("PIR = %#x, want all three vectors posted", u.PIR)
	}

	// Recognition transfers the whole accumulated PIR and clears ON.
	cs := uintr.NewCoreState()
	cs.UINV = 0xec
	cs.UPID = u
	delivered := 0
	cs.Handler = func(ctx *sim.IRQCtx, v uint8) { delivered++ }
	if !cs.Recognize(0xec) {
		t.Fatal("Recognize failed for matching UINV")
	}
	if u.PIR != 0 || u.ON {
		t.Fatalf("after Recognize: PIR=%#x ON=%v, want 0/false", u.PIR, u.ON)
	}
	if n := cs.DeliverPending(nil); n != 3 || delivered != 3 {
		t.Fatalf("DeliverPending = %d (handler ran %d), want 3 — one delivery drains all pending completions", n, delivered)
	}

	// ON was cleared, so the next completion notifies again.
	uintr.PostAndNotify(e, u, 3)
	if raised != 2 {
		t.Fatalf("raised = %d after recognition re-armed, want 2", raised)
	}
}

// TestDroppedNotificationDoesNotSetON: a fault-injected Drop must leave ON
// clear — otherwise the lost notification would suppress every future one
// and the recipient could never recover.
func TestDroppedNotificationDoesNotSetON(t *testing.T) {
	e := sim.NewEngine(1, nil)
	raised := 0
	e.Core(0).SetIRQHandler(func(ctx *sim.IRQCtx, vec int) { raised++ })
	u := &uintr.UPID{NV: 0xec, DestCPU: 0}
	u.Hook = &stubHook{v: uintr.NotifyVerdict{Drop: true}}

	uintr.PostAndNotify(e, u, 0)
	if u.ON {
		t.Fatal("dropped notification set ON; recovery would be impossible")
	}
	// Remove the fault: the next post must notify normally.
	u.Hook = nil
	uintr.PostAndNotify(e, u, 1)
	if raised != 1 || !u.ON {
		t.Fatalf("post after drop: raised=%d ON=%v, want 1/true", raised, u.ON)
	}
}
