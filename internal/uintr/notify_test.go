package uintr_test

import (
	"testing"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/uintr"
)

// stubHook returns a fixed verdict for every notification.
type stubHook struct {
	v     uintr.NotifyVerdict
	calls int
}

func (h *stubHook) OnNotify(u *uintr.UPID, vector uint8) uintr.NotifyVerdict {
	h.calls++
	return h.v
}

func notifyRig(t *testing.T) (*sim.Engine, *uintr.UPID, *int) {
	t.Helper()
	e := sim.NewEngine(1, nil)
	raised := 0
	e.Core(0).SetIRQHandler(func(ctx *sim.IRQCtx, vec int) { raised++ })
	return e, &uintr.UPID{NV: 0xec, DestCPU: 0}, &raised
}

// TestNotifyHookDrop: a Drop verdict loses the notification but not the
// posted PIR bit — the recipient can still recover by polling the UPID.
func TestNotifyHookDrop(t *testing.T) {
	e, u, raised := notifyRig(t)
	h := &stubHook{v: uintr.NotifyVerdict{Drop: true}}
	u.Hook = h
	uintr.PostAndNotify(e, u, 4)
	if *raised != 0 {
		t.Fatal("dropped notification still raised the vector")
	}
	if u.PIR != 1<<4 {
		t.Fatal("drop must not clear the posted bit")
	}
	if u.NotifyDropped.Load() != 1 || h.calls != 1 {
		t.Fatalf("NotifyDropped = %d, hook calls = %d, want 1/1", u.NotifyDropped.Load(), h.calls)
	}
}

// TestNotifyHookDelay: a Delay verdict defers the raise into virtual time
// instead of losing it.
func TestNotifyHookDelay(t *testing.T) {
	e, u, raised := notifyRig(t)
	u.Hook = &stubHook{v: uintr.NotifyVerdict{Delay: 5 * time.Microsecond}}
	uintr.PostAndNotify(e, u, 4)
	if *raised != 0 {
		t.Fatal("delayed notification raised immediately")
	}
	e.Run(0)
	if *raised != 1 {
		t.Fatalf("raised = %d after engine run, want 1", *raised)
	}
	if u.NotifyDelayed.Load() != 1 {
		t.Fatalf("NotifyDelayed = %d, want 1", u.NotifyDelayed.Load())
	}
}

// TestNotifyHookDuplicates: a Duplicates verdict re-raises the vector; the
// extra notifications are spurious but harmless (PIR is recognized once).
func TestNotifyHookDuplicates(t *testing.T) {
	e, u, raised := notifyRig(t)
	u.Hook = &stubHook{v: uintr.NotifyVerdict{Duplicates: 2}}
	uintr.PostAndNotify(e, u, 4)
	e.Run(0)
	if *raised != 3 {
		t.Fatalf("raised = %d, want 3 (original + 2 duplicates)", *raised)
	}
	if u.NotifyDuped.Load() != 2 {
		t.Fatalf("NotifyDuped = %d, want 2", u.NotifyDuped.Load())
	}
}

// TestNotifyHookSNWins: suppression is checked before the hook — a
// suppressed notification never reaches fault injection.
func TestNotifyHookSNWins(t *testing.T) {
	e, u, raised := notifyRig(t)
	h := &stubHook{v: uintr.NotifyVerdict{}}
	u.Hook = h
	u.SN = true
	uintr.PostAndNotify(e, u, 4)
	if *raised != 0 || h.calls != 0 {
		t.Fatalf("SN'd notification reached hook (%d) or core (%d)", h.calls, *raised)
	}
}
