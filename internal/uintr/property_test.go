package uintr_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aeolia/internal/sim"
	"aeolia/internal/uintr"
)

// Property tests for the classed delivery state machine. These exercise the
// invariants the trace analyzer later checks end-to-end, but directly
// against randomized vector/class assignments instead of a full stack run.

// buildClassMap spreads an arbitrary class byte per vector across the real
// class range.
func buildClassMap(classes [uintr.MaxVectors]uint8) *uintr.ClassMap {
	cm := uintr.NewClassMap(uintr.ClassNormal)
	for v, c := range classes {
		cm.Set(uint8(v), uintr.Class(c%uint8(uintr.NumClasses)))
	}
	return cm
}

// TestDeliverPendingOrderProperty: for any pending bitmap and any class
// assignment, DeliverPending drains exactly the pending vectors, each once,
// in the order of a stable sort by (class ascending, vector descending) —
// strictly highest-class-first, hardware vector order within a class.
func TestDeliverPendingOrderProperty(t *testing.T) {
	f := func(pir uint64, classes [uintr.MaxVectors]uint8) bool {
		cm := buildClassMap(classes)
		u := &uintr.UPID{NV: 0xec, Classes: cm}
		cs := uintr.NewCoreState()
		cs.UINV = 0xec
		cs.UPID = u

		var got []uint8
		cs.Handler = func(_ *sim.IRQCtx, v uint8) { got = append(got, v) }

		u.PIR = pir
		if !cs.Recognize(0xec) {
			return false
		}
		n := cs.DeliverPending(nil)

		var want []uint8
		for cl := uintr.Class(0); cl < uintr.NumClasses; cl++ {
			for v := uintr.MaxVectors - 1; v >= 0; v-- {
				if pir&(uint64(1)<<uint(v)) != 0 && cm.Of(uint8(v)) == cl {
					want = append(want, uint8(v))
				}
			}
		}
		if n != len(want) || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return cs.UIRR == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTakePIRNoLossProperty: across any interleaving of posts with
// recognition and delivery — including posts issued by the handler while a
// drain is in progress — every newly set PIR bit is delivered exactly once
// and nothing is pending once the queues drain. Posts to an already-pending
// vector coalesce (Post reports false) and are excluded by construction.
func TestTakePIRNoLossProperty(t *testing.T) {
	f := func(seed int64, roundSeed uint8, classes [uintr.MaxVectors]uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		u := &uintr.UPID{NV: 0xec, Classes: buildClassMap(classes)}
		cs := uintr.NewCoreState()
		cs.UINV = 0xec
		cs.UPID = u

		posted, delivered := 0, 0
		post := func(v uint8) {
			if u.Post(v) {
				posted++
			}
		}
		cs.Handler = func(_ *sim.IRQCtx, v uint8) {
			delivered++
			// A quarter of handler runs post mid-drain: the "concurrent"
			// completion arriving while recognition already consumed the PIR.
			if rng.Intn(4) == 0 {
				post(uint8(rng.Intn(uintr.MaxVectors)))
			}
		}

		rounds := int(roundSeed%16) + 1
		for r := 0; r < rounds; r++ {
			for i, k := 0, rng.Intn(8); i < k; i++ {
				post(uint8(rng.Intn(uintr.MaxVectors)))
			}
			if cs.Recognize(0xec) {
				cs.DeliverPending(nil)
			}
		}
		// Drain the tail the handler's own posts left behind.
		for u.PIR != 0 || cs.UIRR != 0 {
			cs.Recognize(0xec)
			cs.DeliverPending(nil)
		}
		return delivered == posted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
