// Package uintr models the Intel user-interrupt (UINTR) hardware described
// in §4.1 of the paper: per-core MSR state (UINV, UIHANDLER, UIRR, UPIDADDR,
// UITTADDR), the user posted-interrupt descriptor (UPID), the user-interrupt
// target table (UITT), the SENDUIPI instruction, and the two-phase delivery
// state machine (identification + signaling).
//
// Aeolia's key trick (§4.2) — remapping a storage device's MSI-X vector so
// that completions post into the UPID and match UINV — is expressed here as
// PostAndNotify, which is exactly what the repurposed MSI-X write does.
package uintr

import (
	"fmt"
	"sync/atomic"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/trace"
)

// MaxVectors is the number of user-interrupt vectors per UPID (the PIR is a
// 64-bit bitmap).
const MaxVectors = 64

// NotifyVerdict is a fault-injection decision about one notification
// interrupt. The zero value delivers normally.
type NotifyVerdict struct {
	// Drop loses the notification entirely: the PIR bit stays posted but
	// no core ever recognizes it (the recipient needs a recovery path —
	// polling, a watchdog, or the next notification).
	Drop bool
	// Delay postpones the notification by the given virtual time. A
	// delayed notification may find its target context-switched out and
	// take the out-of-schedule kernel fallback path.
	Delay time.Duration
	// Duplicates raises the notification this many extra times (spurious
	// re-delivery, as a level-triggered line or IOMMU replay can cause).
	Duplicates int
}

// NotifyHook intercepts notification interrupts for fault injection. It is
// consulted once per would-be notification (after SN suppression); the
// production path pays one nil-check.
type NotifyHook interface {
	OnNotify(u *UPID, vector uint8) NotifyVerdict
}

// UPID is a user posted-interrupt descriptor. In hardware this is a 16-byte
// memory structure owned by the kernel; Aeolia maps it into the trusted
// driver's protection domain so the userspace handler can rewrite PIR.
type UPID struct {
	// PIR is the posted-interrupt request bitmap; each set bit is a
	// pending user interrupt vector.
	PIR uint64
	// SN (suppress notification) masks physical notification interrupts.
	SN bool
	// ON is the outstanding-notification bit: set while a notification
	// interrupt has been sent but the PIR not yet recognized. Further
	// posts accumulate in the PIR without raising additional physical
	// interrupts — the hardware-level coalescing that lets one delivery
	// drain every pending vector. Recognition (TakePIR) clears it.
	ON bool
	// NV is the notification vector delivered to DestCPU when a bit is
	// posted (the "physical" interrupt the CPU recognizes in step 1).
	NV int
	// DestCPU is the core user IPIs and notifications are sent to.
	DestCPU int

	// Classes, if set, partitions the PIR's vectors into priority classes
	// (delivery drains strictly highest-class-first and urgent posts may
	// preempt lower-class handlers). Nil keeps the legacy class-less
	// behavior.
	Classes *ClassMap

	// Hook, if set, intercepts notifications for fault injection.
	Hook NotifyHook

	// Notification fault stats (only advanced when Hook is set). Atomic so
	// tests and monitors may read them while a simulation goroutine
	// mutates.
	NotifyDropped atomic.Uint64
	NotifyDelayed atomic.Uint64
	NotifyDuped   atomic.Uint64

	// NotifySent counts physical notification interrupts actually raised;
	// NotifySuppressed counts posts coalesced behind an outstanding one.
	NotifySent       atomic.Uint64
	NotifySuppressed atomic.Uint64
}

// TakePIR atomically consumes the posted bitmap: it returns the current PIR
// and clears both PIR and ON, re-arming notification generation. This is the
// recognition step — everything posted while ON was set is drained here by
// the single notification that set it.
func (u *UPID) TakePIR() uint64 {
	pir := u.PIR
	u.PIR = 0
	u.ON = false
	return pir
}

// notify raises the UPID's notification vector on its destination core,
// honoring SN and the fault-injection hook. It is the single exit point for
// both SENDUIPI and remapped MSI-X notifications.
func notify(eng *sim.Engine, u *UPID, vector uint8) {
	if u.SN {
		return
	}
	if u.ON {
		// A notification is already in flight and its recognition will
		// drain this post too (TakePIR). Coalesce: no second interrupt.
		u.NotifySuppressed.Add(1)
		return
	}
	raise := func() { eng.Core(u.DestCPU).RaiseIRQ(u.NV) }
	if u.Hook == nil {
		u.ON = true
		u.NotifySent.Add(1)
		raise()
		return
	}
	v := u.Hook.OnNotify(u, vector)
	if v.Drop {
		// ON deliberately stays clear: a dropped notification must not
		// suppress future ones, or recovery would be impossible.
		u.NotifyDropped.Add(1)
		return
	}
	u.ON = true
	u.NotifySent.Add(1)
	deliver := func() {
		if v.Delay > 0 {
			u.NotifyDelayed.Add(1)
			eng.Schedule(v.Delay, raise)
		} else {
			raise()
		}
	}
	deliver()
	for i := 0; i < v.Duplicates; i++ {
		u.NotifyDuped.Add(1)
		deliver()
	}
}

// Post sets vector's bit in the PIR. It reports whether the bit was newly
// set (hardware coalesces an already-pending vector).
func (u *UPID) Post(vector uint8) bool {
	if vector >= MaxVectors {
		panic(fmt.Sprintf("uintr: vector %d out of range", vector))
	}
	bit := uint64(1) << vector
	was := u.PIR&bit != 0
	u.PIR |= bit
	return !was
}

// UITTEntry is one user-interrupt target table entry: the target UPID and
// the user vector SENDUIPI posts there.
type UITTEntry struct {
	Valid bool
	UPID  *UPID
	UV    uint8
}

// Handler is a userspace user-interrupt handler. It runs in interrupt
// context on the simulated core with the delivered vector; cost must be
// charged by the surrounding dispatch (the delivery toll) or via ctx.Charge.
type Handler func(ctx *sim.IRQCtx, vector uint8)

// CoreState is the per-core user-interrupt MSR state (UINV, UIHANDLER,
// UIRR, UPIDADDR, UITTADDR). Only privileged software (AeoKern) may mutate
// it; the simulation enforces this by confining mutation to the kernel
// model's context-switch and setup paths.
type CoreState struct {
	// UINV is the user-interrupt notification vector recognized in
	// delivery step 1; -1 means user interrupts are disabled on the core.
	UINV int
	// UIRR is the user-interrupt request register bitmap (pending user
	// interrupts already accepted by the core).
	UIRR uint64
	// Handler is the UIHANDLER target.
	Handler Handler
	// UPID is the UPIDADDR target for the thread currently on the core.
	UPID *UPID
	// UITT is the UITTADDR target.
	UITT []UITTEntry
	// InUser reports whether the core currently executes ring-3 code of
	// the thread owning UPID; delivery step 3 checks it. If nil the core
	// is always considered in user mode.
	InUser func() bool

	// Delivered counts user interrupts delivered to the handler.
	Delivered uint64
	// Spurious counts deliveries that found no pending vector (e.g. the
	// vector-sharing artifact of §4.2).
	Spurious uint64
	// Preemptions counts nested (preemptive) deliveries: a more urgent
	// vector delivered while a lower-class handler was in progress.
	Preemptions uint64

	// active is the stack of classes whose handlers are currently
	// executing (innermost last); a nested recognition only delivers
	// vectors strictly more urgent than the innermost active class.
	active []Class
	// recog counts recognitions; per-vector delivery trace events carry it
	// so the analyzer can group the deliveries drained by one poll.
	recog uint32
}

// NewCoreState returns a disabled user-interrupt unit.
func NewCoreState() *CoreState {
	return &CoreState{UINV: -1}
}

// Recognize implements delivery steps 1-2 for an arriving physical
// interrupt: if vector matches UINV and a UPID is installed, the PIR is
// transferred into UIRR (and cleared) and Recognize returns true; otherwise
// the interrupt must be handled as a regular kernel interrupt and Recognize
// returns false.
func (cs *CoreState) Recognize(vector int) bool {
	if cs.UINV < 0 || vector != cs.UINV || cs.UPID == nil {
		return false
	}
	cs.UIRR |= cs.UPID.TakePIR()
	cs.recog++
	return true
}

// HandlerDepth returns the number of user-interrupt handlers currently
// executing on the core (>1 during a preemptive nested delivery).
func (cs *CoreState) HandlerDepth() int { return len(cs.active) }

// DeliverPending implements steps 3-4: if the core is in user mode, invoke
// the user handler once per pending UIRR bit. Without a priority ClassMap
// on the UPID the drain order is highest vector first, as the hardware
// does. With one, the drain is strictly highest-class-first (ascending
// Class value; highest vector first within a class), and a DeliverPending
// that interrupts an in-progress handler — a preemptive nested delivery —
// only drains vectors strictly more urgent than that handler's class,
// leaving the rest in the UIRR for the interrupted drain to pick up. Each
// delivery clears its bit. Returns the number of handler invocations.
func (cs *CoreState) DeliverPending(ctx *sim.IRQCtx) int {
	if cs.InUser != nil && !cs.InUser() {
		return 0
	}
	floor := NumClasses
	if d := len(cs.active); d > 0 {
		floor = cs.active[d-1]
	}
	rid := cs.recog
	classed := cs.UPID != nil && cs.UPID.Classes != nil
	n := 0
	for {
		v, cl, ok := cs.nextPending(floor)
		if !ok {
			return n
		}
		cs.UIRR &^= uint64(1) << v
		cs.Delivered++
		n++
		nested := len(cs.active) > 0
		if nested {
			cs.Preemptions++
		}
		if ctx != nil && classed {
			if tr := ctx.Engine().Tracer; tr != nil {
				core := ctx.Core().ID
				now := ctx.Now()
				if nested {
					tr.Emit(now, trace.UINTRPreempt, core, -1, uint32(len(cs.active)),
						uint64(cs.active[len(cs.active)-1]), uint64(cl)<<8|uint64(v))
				}
				tr.Emit(now, trace.UINTRVecDeliver, core, -1, rid, uint64(v), uint64(cl))
			}
		}
		cs.active = append(cs.active, cl)
		if cs.Handler != nil {
			cs.Handler(ctx, v)
		}
		cs.active = cs.active[:len(cs.active)-1]
	}
}

// nextPending returns the next vector to deliver: the highest vector of the
// most urgent pending class, considering only classes strictly more urgent
// than floor.
func (cs *CoreState) nextPending(floor Class) (uint8, Class, bool) {
	if cs.UIRR == 0 {
		return 0, 0, false
	}
	var m *ClassMap
	if cs.UPID != nil {
		m = cs.UPID.Classes
	}
	for cl := Class(0); cl < floor; cl++ {
		if bits := cs.UIRR & m.Mask(cl); bits != 0 {
			return uint8(63 - leadingZeros64(bits)), cl, true
		}
	}
	return 0, 0, false
}

func leadingZeros64(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(uint64(1)<<i) != 0 {
			return n
		}
		n++
	}
	return 64
}

// SendUIPI executes the SENDUIPI instruction against this core's UITT:
// it posts the entry's UV into the target UPID and, unless notifications
// are suppressed, raises the notification vector on the destination core.
// It returns the target UPID so callers can model further effects.
func (cs *CoreState) SendUIPI(eng *sim.Engine, index int) (*UPID, error) {
	if index < 0 || index >= len(cs.UITT) || !cs.UITT[index].Valid {
		return nil, fmt.Errorf("uintr: invalid UITT index %d (#GP)", index)
	}
	ent := cs.UITT[index]
	ent.UPID.Post(ent.UV)
	if tr := eng.Tracer; tr != nil {
		tr.Emit(eng.Now(), trace.UPIDPost, ent.UPID.DestCPU, -1, trace.NoCID, postClassLBA(ent.UPID, ent.UV), uint64(ent.UV))
	}
	notify(eng, ent.UPID, ent.UV)
	return ent.UPID, nil
}

// PostAndNotify models a device MSI-X write that AeoKern remapped onto the
// user-interrupt path (§4.2): post vector into the UPID and raise its
// notification vector on the destination core.
func PostAndNotify(eng *sim.Engine, u *UPID, vector uint8) {
	u.Post(vector)
	if tr := eng.Tracer; tr != nil {
		tr.Emit(eng.Now(), trace.UPIDPost, u.DestCPU, -1, trace.NoCID, postClassLBA(u, vector), uint64(vector))
	}
	notify(eng, u, vector)
}

// postClassLBA encodes a classed post's class into the UPIDPost event's LBA
// field as class+1; unclassed UPIDs emit 0, keeping legacy traces stable.
func postClassLBA(u *UPID, vector uint8) uint64 {
	if u.Classes == nil {
		return 0
	}
	return uint64(u.Classes.Of(vector)) + 1
}
