package uintr_test

import (
	"testing"

	"aeolia/internal/sim"
	"aeolia/internal/uintr"
)

func TestUPIDPostCoalesces(t *testing.T) {
	u := &uintr.UPID{}
	if !u.Post(3) {
		t.Fatal("first post should be new")
	}
	if u.Post(3) {
		t.Fatal("second post of same vector should coalesce")
	}
	if u.PIR != 1<<3 {
		t.Fatalf("PIR = %#x, want bit 3", u.PIR)
	}
}

func TestRecognizeVectorMatch(t *testing.T) {
	cs := uintr.NewCoreState()
	u := &uintr.UPID{}
	u.Post(7)
	cs.UPID = u
	cs.UINV = 0xec
	if cs.Recognize(0x30) {
		t.Fatal("mismatched vector recognized as user interrupt")
	}
	if !cs.Recognize(0xec) {
		t.Fatal("matching vector not recognized")
	}
	if u.PIR != 0 {
		t.Fatal("PIR not cleared by recognition (step 2)")
	}
	if cs.UIRR != 1<<7 {
		t.Fatalf("UIRR = %#x, want bit 7", cs.UIRR)
	}
}

func TestRecognizeDisabled(t *testing.T) {
	cs := uintr.NewCoreState()
	if cs.Recognize(0xec) {
		t.Fatal("disabled unit recognized an interrupt")
	}
}

func TestDeliverPendingInvokesHandlerPerBit(t *testing.T) {
	cs := uintr.NewCoreState()
	var got []uint8
	cs.Handler = func(ctx *sim.IRQCtx, v uint8) { got = append(got, v) }
	cs.UIRR = 1<<2 | 1<<9 | 1<<41
	n := cs.DeliverPending(nil)
	if n != 3 {
		t.Fatalf("delivered %d, want 3", n)
	}
	// Highest vector first, as hardware scans the UIRR.
	if len(got) != 3 || got[0] != 41 || got[1] != 9 || got[2] != 2 {
		t.Fatalf("delivery order = %v, want [41 9 2]", got)
	}
	if cs.UIRR != 0 {
		t.Fatal("UIRR not drained")
	}
}

func TestDeliverPendingRespectsRing(t *testing.T) {
	cs := uintr.NewCoreState()
	cs.Handler = func(ctx *sim.IRQCtx, v uint8) { t.Error("delivered in kernel mode") }
	cs.InUser = func() bool { return false }
	cs.UIRR = 1
	if n := cs.DeliverPending(nil); n != 0 {
		t.Fatalf("delivered %d in kernel mode, want 0", n)
	}
	if cs.UIRR != 1 {
		t.Fatal("UIRR lost while in kernel mode")
	}
}

func TestSendUIPIPostsAndNotifies(t *testing.T) {
	e := sim.NewEngine(2, nil)
	var raised []int
	e.Core(1).SetIRQHandler(func(ctx *sim.IRQCtx, vec int) { raised = append(raised, vec) })

	target := &uintr.UPID{NV: 0xec, DestCPU: 1}
	sender := uintr.NewCoreState()
	sender.UITT = []uintr.UITTEntry{{Valid: true, UPID: target, UV: 5}}

	if _, err := sender.SendUIPI(e, 0); err != nil {
		t.Fatal(err)
	}
	if target.PIR != 1<<5 {
		t.Fatalf("PIR = %#x, want bit 5", target.PIR)
	}
	if len(raised) != 1 || raised[0] != 0xec {
		t.Fatalf("raised = %v, want [0xec]", raised)
	}
}

func TestSendUIPIInvalidIndexFaults(t *testing.T) {
	e := sim.NewEngine(1, nil)
	cs := uintr.NewCoreState()
	if _, err := cs.SendUIPI(e, 0); err == nil {
		t.Fatal("SENDUIPI with empty UITT should #GP")
	}
	cs.UITT = []uintr.UITTEntry{{Valid: false}}
	if _, err := cs.SendUIPI(e, 0); err == nil {
		t.Fatal("SENDUIPI at invalid entry should #GP")
	}
}

func TestSuppressNotification(t *testing.T) {
	e := sim.NewEngine(1, nil)
	raised := 0
	e.Core(0).SetIRQHandler(func(ctx *sim.IRQCtx, vec int) { raised++ })
	u := &uintr.UPID{NV: 0xec, DestCPU: 0, SN: true}
	uintr.PostAndNotify(e, u, 4)
	if raised != 0 {
		t.Fatal("notification sent despite SN")
	}
	if u.PIR != 1<<4 {
		t.Fatal("post lost")
	}
}

func TestDevicePostAndNotifyEndToEnd(t *testing.T) {
	// The §4.2 path: a device completion posts into the UPID and raises
	// the notification vector; the core recognizes it and delivers to
	// the userspace handler.
	e := sim.NewEngine(1, nil)
	cs := uintr.NewCoreState()
	cs.UINV = 0xec
	u := &uintr.UPID{NV: 0xec, DestCPU: 0}
	cs.UPID = u
	var delivered []uint8
	cs.Handler = func(ctx *sim.IRQCtx, v uint8) { delivered = append(delivered, v) }
	e.Core(0).SetIRQHandler(func(ctx *sim.IRQCtx, vec int) {
		if cs.Recognize(vec) {
			cs.DeliverPending(ctx)
		}
	})

	uintr.PostAndNotify(e, u, 9)
	if len(delivered) != 1 || delivered[0] != 9 {
		t.Fatalf("delivered = %v, want [9]", delivered)
	}
	if cs.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1", cs.Delivered)
	}
}

func TestSpuriousSharedVectorInterrupt(t *testing.T) {
	// §4.2: when a UIPI and a device share the vector, the handler can
	// run once per PIR bit but find only one event source — the extra
	// delivery is spurious. Model: two bits posted, one notification
	// arrives after both posts; both deliveries happen back to back, and
	// a second notification then finds an empty PIR.
	e := sim.NewEngine(1, nil)
	cs := uintr.NewCoreState()
	cs.UINV = 0xec
	u := &uintr.UPID{NV: 0xec, DestCPU: 0}
	cs.UPID = u
	handled := 0
	cs.Handler = func(ctx *sim.IRQCtx, v uint8) { handled++ }
	e.Core(0).SetIRQHandler(func(ctx *sim.IRQCtx, vec int) {
		if cs.Recognize(vec) {
			if cs.DeliverPending(ctx) == 0 {
				cs.Spurious++
			}
		}
	})

	u.Post(1) // UIPI posts its bit
	uintr.PostAndNotify(e, u, 2)
	// The UIPI's own notification arrives second and finds nothing.
	e.Core(0).RaiseIRQ(0xec)

	if handled != 2 {
		t.Fatalf("handled = %d, want 2", handled)
	}
	if cs.Spurious != 1 {
		t.Fatalf("Spurious = %d, want 1", cs.Spurious)
	}
}
