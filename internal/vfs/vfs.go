// Package vfs defines the file-system interface every evaluated system
// (AeoFS, the ext4/f2fs-like kernel baselines, the uFS-like semi-microkernel)
// implements, so workloads (fio-style, FXMARK, Filebench, the LevelDB-like
// KV store) drive them uniformly.
package vfs

import (
	"time"

	"aeolia/internal/aeofs"
	"aeolia/internal/sim"
)

// Open flags, shared across implementations (same values as aeofs).
const (
	O_RDONLY = aeofs.O_RDONLY
	O_WRONLY = aeofs.O_WRONLY
	O_RDWR   = aeofs.O_RDWR
	O_CREATE = aeofs.O_CREATE
	O_EXCL   = aeofs.O_EXCL
	O_TRUNC  = aeofs.O_TRUNC
	O_APPEND = aeofs.O_APPEND
)

// FileInfo is the stat result.
type FileInfo struct {
	Ino   uint64
	Dir   bool
	Size  uint64
	Nlink uint32
	MTime time.Duration
}

// Dirent is one directory entry.
type Dirent struct {
	Ino  uint64
	Name string
}

// FileSystem is the POSIX-like surface the benchmarks exercise.
type FileSystem interface {
	Name() string

	Open(env *sim.Env, path string, flags int) (int, error)
	Close(env *sim.Env, fd int) error
	Read(env *sim.Env, fd int, buf []byte) (int, error)
	ReadAt(env *sim.Env, fd int, buf []byte, off uint64) (int, error)
	Write(env *sim.Env, fd int, buf []byte) (int, error)
	WriteAt(env *sim.Env, fd int, buf []byte, off uint64) (int, error)
	Seek(env *sim.Env, fd int, off uint64) error
	Fsync(env *sim.Env, fd int) error

	Stat(env *sim.Env, path string) (FileInfo, error)
	Mkdir(env *sim.Env, path string) error
	Rmdir(env *sim.Env, path string) error
	Unlink(env *sim.Env, path string) error
	Rename(env *sim.Env, src, dst string) error
	ReadDir(env *sim.Env, path string) ([]Dirent, error)
	Truncate(env *sim.Env, path string, size uint64) error
}

// PerThreadInit is implemented by file systems that need per-task setup
// (e.g. creating a driver queue pair) before a task issues operations.
type PerThreadInit interface {
	InitThread(env *sim.Env) error
}

// AeoFSAdapter adapts *aeofs.FS to the vfs interface.
type AeoFSAdapter struct {
	FS *aeofs.FS
}

var _ FileSystem = (*AeoFSAdapter)(nil)

// Name implements FileSystem.
func (a *AeoFSAdapter) Name() string { return "aeofs" }

// InitThread creates the calling task's driver queue pair.
func (a *AeoFSAdapter) InitThread(env *sim.Env) error {
	_, err := a.FS.Driver().CreateQP(env)
	return err
}

// Open implements FileSystem.
func (a *AeoFSAdapter) Open(env *sim.Env, path string, flags int) (int, error) {
	return a.FS.Open(env, path, flags)
}

// Close implements FileSystem.
func (a *AeoFSAdapter) Close(env *sim.Env, fd int) error { return a.FS.Close(env, fd) }

// Read implements FileSystem.
func (a *AeoFSAdapter) Read(env *sim.Env, fd int, buf []byte) (int, error) {
	return a.FS.Read(env, fd, buf)
}

// ReadAt implements FileSystem.
func (a *AeoFSAdapter) ReadAt(env *sim.Env, fd int, buf []byte, off uint64) (int, error) {
	return a.FS.ReadAt(env, fd, buf, off)
}

// Write implements FileSystem.
func (a *AeoFSAdapter) Write(env *sim.Env, fd int, buf []byte) (int, error) {
	return a.FS.Write(env, fd, buf)
}

// WriteAt implements FileSystem.
func (a *AeoFSAdapter) WriteAt(env *sim.Env, fd int, buf []byte, off uint64) (int, error) {
	return a.FS.WriteAt(env, fd, buf, off)
}

// Seek implements FileSystem.
func (a *AeoFSAdapter) Seek(env *sim.Env, fd int, off uint64) error {
	return a.FS.Seek(env, fd, off)
}

// Fsync implements FileSystem.
func (a *AeoFSAdapter) Fsync(env *sim.Env, fd int) error { return a.FS.Fsync(env, fd) }

// Stat implements FileSystem.
func (a *AeoFSAdapter) Stat(env *sim.Env, path string) (FileInfo, error) {
	in, err := a.FS.Stat(env, path)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Ino:   in.Ino,
		Dir:   in.Type == aeofs.TypeDir,
		Size:  in.Size,
		Nlink: in.Nlink,
		MTime: time.Duration(in.MTimeNS),
	}, nil
}

// Mkdir implements FileSystem.
func (a *AeoFSAdapter) Mkdir(env *sim.Env, path string) error { return a.FS.Mkdir(env, path) }

// Rmdir implements FileSystem.
func (a *AeoFSAdapter) Rmdir(env *sim.Env, path string) error { return a.FS.Rmdir(env, path) }

// Unlink implements FileSystem.
func (a *AeoFSAdapter) Unlink(env *sim.Env, path string) error { return a.FS.Unlink(env, path) }

// Rename implements FileSystem.
func (a *AeoFSAdapter) Rename(env *sim.Env, src, dst string) error {
	return a.FS.Rename(env, src, dst)
}

// ReadDir implements FileSystem.
func (a *AeoFSAdapter) ReadDir(env *sim.Env, path string) ([]Dirent, error) {
	ds, err := a.FS.ReadDir(env, path)
	if err != nil {
		return nil, err
	}
	out := make([]Dirent, len(ds))
	for i, d := range ds {
		out[i] = Dirent{Ino: d.Ino, Name: d.Name}
	}
	return out, nil
}

// Truncate implements FileSystem.
func (a *AeoFSAdapter) Truncate(env *sim.Env, path string, size uint64) error {
	return a.FS.Truncate(env, path, size)
}
