package vfs_test

import (
	"bytes"
	"testing"

	"aeolia/internal/aeofs"
	"aeolia/internal/machine"
	"aeolia/internal/nvme"
	"aeolia/internal/sim"
	"aeolia/internal/vfs"
)

// mountAeoFS builds a machine, formats AeoFS, and returns the adapter plus
// a runner that executes fn on a task with a ready queue pair.
func mountAeoFS(t *testing.T) (*vfs.AeoFSAdapter, func(fn func(env *sim.Env))) {
	t.Helper()
	m := machine.New(1, nvme.Config{BlockSize: aeofs.BlockSize, NumBlocks: 1 << 13})
	t.Cleanup(m.Eng.Shutdown)
	fi, err := m.BuildFS(machine.KindAeoFS, machine.FSOptions{})
	if err != nil {
		t.Fatalf("build fs: %v", err)
	}
	ad, ok := fi.FS.(*vfs.AeoFSAdapter)
	if !ok {
		t.Fatalf("BuildFS(aeofs) returned %T, want *vfs.AeoFSAdapter", fi.FS)
	}
	run := func(fn func(env *sim.Env)) {
		done := false
		m.Eng.Spawn("vfs-test", m.Eng.Core(0), func(env *sim.Env) {
			if err := ad.InitThread(env); err != nil {
				t.Errorf("InitThread: %v", err)
				return
			}
			fn(env)
			done = true
		})
		m.Eng.Run(0)
		if !done {
			t.Fatal("test task did not finish")
		}
	}
	return ad, run
}

func TestAdapterName(t *testing.T) {
	ad, _ := mountAeoFS(t)
	if ad.Name() != "aeofs" {
		t.Fatalf("Name() = %q, want aeofs", ad.Name())
	}
}

// TestAdapterFileLifecycle drives every file-level method through the
// adapter: open/write/seek/read/pread/pwrite/fsync/stat/truncate/close.
func TestAdapterFileLifecycle(t *testing.T) {
	ad, run := mountAeoFS(t)
	run(func(env *sim.Env) {
		fd, err := ad.Open(env, "/f.dat", vfs.O_CREATE|vfs.O_RDWR)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		payload := []byte("through the adapter")
		if n, err := ad.Write(env, fd, payload); err != nil || n != len(payload) {
			t.Errorf("write = %d, %v", n, err)
		}
		if err := ad.Seek(env, fd, 0); err != nil {
			t.Errorf("seek: %v", err)
		}
		buf := make([]byte, len(payload))
		if n, err := ad.Read(env, fd, buf); err != nil || n != len(payload) {
			t.Errorf("read = %d, %v", n, err)
		}
		if !bytes.Equal(buf, payload) {
			t.Errorf("read back %q, want %q", buf, payload)
		}
		// Positional I/O does not disturb the cursor.
		patch := []byte("ADAPTER")
		if n, err := ad.WriteAt(env, fd, patch, 12); err != nil || n != len(patch) {
			t.Errorf("writeAt = %d, %v", n, err)
		}
		at := make([]byte, len(patch))
		if n, err := ad.ReadAt(env, fd, at, 12); err != nil || n != len(patch) {
			t.Errorf("readAt = %d, %v", n, err)
		}
		if !bytes.Equal(at, patch) {
			t.Errorf("readAt %q, want %q", at, patch)
		}
		if err := ad.Fsync(env, fd); err != nil {
			t.Errorf("fsync: %v", err)
		}
		fi, err := ad.Stat(env, "/f.dat")
		if err != nil || fi.Dir || fi.Size != uint64(12+len(patch)) {
			t.Errorf("stat = %+v, %v (want size %d)", fi, err, 12+len(patch))
		}
		if err := ad.Truncate(env, "/f.dat", 4); err != nil {
			t.Errorf("truncate: %v", err)
		}
		if fi, _ := ad.Stat(env, "/f.dat"); fi.Size != 4 {
			t.Errorf("size after truncate = %d, want 4", fi.Size)
		}
		if err := ad.Close(env, fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
}

// TestAdapterNamespace drives the directory-level methods: mkdir, readdir,
// rename, unlink, rmdir.
func TestAdapterNamespace(t *testing.T) {
	ad, run := mountAeoFS(t)
	run(func(env *sim.Env) {
		if err := ad.Mkdir(env, "/d"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		fd, err := ad.Open(env, "/d/a", vfs.O_CREATE|vfs.O_RDWR)
		if err != nil {
			t.Errorf("open in dir: %v", err)
			return
		}
		if err := ad.Close(env, fd); err != nil {
			t.Errorf("close: %v", err)
		}
		ds, err := ad.ReadDir(env, "/d")
		if err != nil || len(ds) != 1 || ds[0].Name != "a" {
			t.Errorf("readdir = %+v, %v (want one entry \"a\")", ds, err)
		}
		if err := ad.Rename(env, "/d/a", "/d/b"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if _, err := ad.Stat(env, "/d/a"); err == nil {
			t.Error("stat of renamed-away path succeeded")
		}
		if _, err := ad.Stat(env, "/d/b"); err != nil {
			t.Errorf("stat of rename target: %v", err)
		}
		if err := ad.Rmdir(env, "/d"); err == nil {
			t.Error("rmdir of non-empty directory succeeded")
		}
		if err := ad.Unlink(env, "/d/b"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if err := ad.Rmdir(env, "/d"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
		if _, err := ad.Stat(env, "/d"); err == nil {
			t.Error("stat of removed directory succeeded")
		}
	})
}

// TestAdapterErrorPaths pins the error surface workloads depend on.
func TestAdapterErrorPaths(t *testing.T) {
	ad, run := mountAeoFS(t)
	run(func(env *sim.Env) {
		if _, err := ad.Open(env, "/absent", vfs.O_RDWR); err == nil {
			t.Error("open of missing file without O_CREATE succeeded")
		}
		if _, err := ad.Stat(env, "/absent"); err == nil {
			t.Error("stat of missing file succeeded")
		}
		if err := ad.Unlink(env, "/absent"); err == nil {
			t.Error("unlink of missing file succeeded")
		}
		fd, err := ad.Open(env, "/x", vfs.O_CREATE|vfs.O_RDWR)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := ad.Open(env, "/x", vfs.O_CREATE|vfs.O_EXCL|vfs.O_RDWR); err == nil {
			t.Error("O_EXCL re-create succeeded")
		}
		if err := ad.Close(env, fd); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := ad.Close(env, fd); err == nil {
			t.Error("double close succeeded")
		}
		if _, err := ad.Read(env, fd, make([]byte, 8)); err == nil {
			t.Error("read on closed fd succeeded")
		}
	})
}
