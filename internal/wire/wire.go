// Package wire provides the little-endian binary frame helpers shared by
// the stack's network protocols (aeosvc's storage service, cluster's
// replication frames, aeomds's metadata service). Each protocol keeps its
// own message structs, magics, and validation; this package owns only the
// mechanical byte shuffling — an appending Writer and a bounds-checked
// Reader with one sticky error — so the encode/decode skeleton is written
// once instead of per protocol.
//
// Encoding is position-based little-endian with no implicit framing: a
// Writer emits exactly the fields appended, in order, so protocols that
// predate this package keep byte-identical frames (pinned by golden wire
// tests in aeosvc and cluster).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is wrapped by every Reader failure.
var ErrTruncated = errors.New("wire: truncated frame")

// Writer builds a frame by appending little-endian fields. Methods chain:
//
//	b := wire.NewWriter(32).U8(magic).U16(id).Str(name).Frame()
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given capacity hint.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) *Writer {
	w.buf = append(w.buf, v)
	return w
}

// Bool appends one byte: 1 for true, 0 for false.
func (w *Writer) Bool(v bool) *Writer {
	if v {
		return w.U8(1)
	}
	return w.U8(0)
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	return w
}

// Bytes appends raw bytes (no length prefix; the protocol carries lengths
// in its header fields).
func (w *Writer) Bytes(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// Str appends raw string bytes (no length prefix).
func (w *Writer) Str(s string) *Writer {
	w.buf = append(w.buf, s...)
	return w
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Frame returns the assembled frame.
func (w *Writer) Frame() []byte { return w.buf }

// Reader walks a frame extracting little-endian fields. The first
// out-of-bounds read sets a sticky error and every later read returns the
// zero value, so decoders can run straight-line and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// need reserves n more bytes, recording a sticky error when they are not
// there.
func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: want %d byte(s) at offset %d of %d",
			ErrTruncated, n, r.off, len(r.buf))
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool reads one byte as a boolean (nonzero = true).
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Bytes reads n raw bytes into a fresh slice (frames belong to the fabric;
// decoded messages must not alias them). n == 0 returns nil.
func (r *Reader) Bytes(n int) []byte {
	if n == 0 || !r.need(n) {
		return nil
	}
	v := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return v
}

// Str reads n raw bytes as a string.
func (r *Reader) Str(n int) string {
	if !r.need(n) {
		return ""
	}
	v := string(r.buf[r.off : r.off+n])
	r.off += n
	return v
}

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Done returns the sticky error, or an error if unread bytes remain — for
// protocols whose frames carry no trailing slack.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing byte(s) after frame", len(r.buf)-r.off)
	}
	return nil
}
