package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestRoundTrip drives every field kind through a Writer/Reader pair.
func TestRoundTrip(t *testing.T) {
	b := NewWriter(64).
		U8(0xA7).Bool(true).Bool(false).
		U16(0xBEEF).U32(0xDEADBEEF).U64(0x0102030405060708).
		Str("hello").Bytes([]byte{9, 8, 7}).
		Frame()
	r := NewReader(b)
	if got := r.U8(); got != 0xA7 {
		t.Fatalf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.U16(); got != 0xBEEF {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0102030405060708 {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.Str(5); got != "hello" {
		t.Fatalf("Str = %q", got)
	}
	if got := r.Bytes(3); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("Bytes = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestLittleEndianLayout pins the byte order — protocols that predate the
// package rely on it for frame compatibility.
func TestLittleEndianLayout(t *testing.T) {
	b := NewWriter(0).U16(0x0201).U32(0x06050403).U64(0x0E0D0C0B0A090807).Frame()
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E}
	if !bytes.Equal(b, want) {
		t.Fatalf("layout = %v, want %v", b, want)
	}
}

// TestStickyError verifies the first truncation poisons the reader and all
// later reads return zero values.
func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U8(); got != 1 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U32(); got != 0 {
		t.Fatalf("truncated U32 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// Later reads stay zero even though one byte technically remains.
	if got := r.U8(); got != 0 {
		t.Fatalf("post-error U8 = %d, want 0", got)
	}
	if r.Remaining() != 0 {
		t.Fatalf("post-error Remaining = %d, want 0", r.Remaining())
	}
	if err := r.Done(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Done = %v, want ErrTruncated", err)
	}
}

// TestDoneTrailing rejects frames with unread slack.
func TestDoneTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.U8()
	if err := r.Done(); err == nil {
		t.Fatal("Done accepted 2 trailing bytes")
	}
}

// TestBytesCopies ensures decoded slices do not alias the frame.
func TestBytesCopies(t *testing.T) {
	frame := []byte{1, 2, 3}
	got := NewReader(frame).Bytes(3)
	frame[0] = 99
	if got[0] != 1 {
		t.Fatal("Bytes aliases the input frame")
	}
	if NewReader(frame).Bytes(0) != nil {
		t.Fatal("Bytes(0) should be nil")
	}
}
