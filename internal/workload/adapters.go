package workload

import (
	"aeolia/internal/aeodriver"
	"aeolia/internal/nvme"
	"aeolia/internal/sim"
	"aeolia/internal/stackmodel"
)

// StackIO adapts a stackmodel.Stack (POSIX, io_uring variants, SPDK) to
// BlockIO.
type StackIO struct {
	Stack *stackmodel.Stack
	Depth int
}

var _ BlockIO = (*StackIO)(nil)

// Init implements BlockIO.
func (s *StackIO) Init(env *sim.Env) error {
	d := s.Depth
	if d == 0 {
		d = 64
	}
	return s.Stack.Prepare(env, d)
}

// Read implements BlockIO.
func (s *StackIO) Read(env *sim.Env, lba uint64, cnt uint32, buf []byte) error {
	return s.Stack.Read(env, lba, cnt, buf)
}

// Write implements BlockIO.
func (s *StackIO) Write(env *sim.Env, lba uint64, cnt uint32, buf []byte) error {
	return s.Stack.Write(env, lba, cnt, buf)
}

// SubmitRead implements BlockIO.
func (s *StackIO) SubmitRead(env *sim.Env, lba uint64, cnt uint32, buf []byte) (func(*sim.Env) error, error) {
	req, err := s.Stack.Submit(env, nvme.OpRead, lba, cnt, buf)
	if err != nil {
		return nil, err
	}
	return func(env *sim.Env) error { return s.Stack.Wait(env, req) }, nil
}

// SubmitWrite implements BlockIO.
func (s *StackIO) SubmitWrite(env *sim.Env, lba uint64, cnt uint32, buf []byte) (func(*sim.Env) error, error) {
	req, err := s.Stack.Submit(env, nvme.OpWrite, lba, cnt, buf)
	if err != nil {
		return nil, err
	}
	return func(env *sim.Env) error { return s.Stack.Wait(env, req) }, nil
}

// DriverIO adapts AeoDriver to BlockIO.
type DriverIO struct {
	Driver *aeodriver.Driver
}

var _ BlockIO = (*DriverIO)(nil)

// Init implements BlockIO.
func (d *DriverIO) Init(env *sim.Env) error {
	_, err := d.Driver.CreateQP(env)
	return err
}

// Read implements BlockIO.
func (d *DriverIO) Read(env *sim.Env, lba uint64, cnt uint32, buf []byte) error {
	return d.Driver.ReadBlk(env, lba, cnt, buf)
}

// Write implements BlockIO.
func (d *DriverIO) Write(env *sim.Env, lba uint64, cnt uint32, buf []byte) error {
	return d.Driver.WriteBlk(env, lba, cnt, buf)
}

// SubmitRead implements BlockIO.
func (d *DriverIO) SubmitRead(env *sim.Env, lba uint64, cnt uint32, buf []byte) (func(*sim.Env) error, error) {
	req, err := d.Driver.Submit(env, nvme.OpRead, lba, cnt, buf, false)
	if err != nil {
		return nil, err
	}
	return func(env *sim.Env) error { return d.Driver.Wait(env, req) }, nil
}

// SubmitWrite implements BlockIO.
func (d *DriverIO) SubmitWrite(env *sim.Env, lba uint64, cnt uint32, buf []byte) (func(*sim.Env) error, error) {
	req, err := d.Driver.Submit(env, nvme.OpWrite, lba, cnt, buf, false)
	if err != nil {
		return nil, err
	}
	return func(env *sim.Env) error { return d.Driver.Wait(env, req) }, nil
}
