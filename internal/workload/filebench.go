package workload

import (
	"fmt"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/vfs"
)

// FilebenchProfile reproduces one Table 7 personality. Sizes are scaled
// down from the paper's configuration by Scale (the shapes depend on the
// operation mix, not absolute fileset size).
type FilebenchProfile struct {
	Name        string
	Files       int    // fileset size
	AvgFileSize uint64 // bytes
	ReadSize    int    // whole-file reads are chunked by this
	WriteSize   int
	// ReadsPerLoop / WritesPerLoop encode the R/W ratio of Table 7.
	ReadsPerLoop  int
	WritesPerLoop int
	// CreateDelete adds a create+delete per loop (fileserver, varmail).
	CreateDelete bool
	// FsyncWrites fsyncs after appends (varmail).
	FsyncWrites bool
}

// FilebenchProfiles returns the four personalities with Table 7's mixes,
// scaled by scale (1 = paper size: 10K-100K files; use ~0.01 for tests).
func FilebenchProfiles(scale float64) map[string]*FilebenchProfile {
	n := func(files int) int {
		v := int(float64(files) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	sz := func(s uint64) uint64 {
		v := uint64(float64(s) * scale)
		if v < 16*1024 {
			v = 16 * 1024
		}
		return v
	}
	return map[string]*FilebenchProfile{
		// Name        #Files  AvgSize  IO(r/w)        R:W
		// Fileserver  10K     1MB      1MB/1MB        1:2
		"fileserver": {
			Name: "fileserver", Files: n(10000), AvgFileSize: sz(1 << 20),
			ReadSize: 1 << 20, WriteSize: 1 << 20,
			ReadsPerLoop: 1, WritesPerLoop: 2, CreateDelete: true,
		},
		// Webserver   10K     1MB      1MB/256KB      10:1
		"webserver": {
			Name: "webserver", Files: n(10000), AvgFileSize: sz(1 << 20),
			ReadSize: 1 << 20, WriteSize: 256 << 10,
			ReadsPerLoop: 10, WritesPerLoop: 1,
		},
		// Webproxy    50K     512KB    1MB/16KB       5:1
		"webproxy": {
			Name: "webproxy", Files: n(50000), AvgFileSize: sz(512 << 10),
			ReadSize: 1 << 20, WriteSize: 16 << 10,
			ReadsPerLoop: 5, WritesPerLoop: 1,
		},
		// Varmail     100K    16KB     1MB/16KB       1:1
		"varmail": {
			Name: "varmail", Files: n(100000), AvgFileSize: 16 << 10,
			ReadSize: 1 << 20, WriteSize: 16 << 10,
			ReadsPerLoop: 1, WritesPerLoop: 1, CreateDelete: true, FsyncWrites: true,
		},
	}
}

// FilebenchOrder is the presentation order of Figure 18.
var FilebenchOrder = []string{"fileserver", "webserver", "webproxy", "varmail"}

// filePath returns fileset member i's path (spread over width-20 dirs).
func (p *FilebenchProfile) filePath(i int) string {
	return fmt.Sprintf("/%s/dir%d/f%d", p.Name, i%20, i)
}

// Setup builds the fileset.
func (p *FilebenchProfile) Setup(env *sim.Env, fs vfs.FileSystem) error {
	if err := fs.Mkdir(env, "/"+p.Name); err != nil {
		return err
	}
	for d := 0; d < 20; d++ {
		if err := fs.Mkdir(env, fmt.Sprintf("/%s/dir%d", p.Name, d)); err != nil {
			return err
		}
	}
	chunk := make([]byte, 1<<20)
	for i := 0; i < p.Files; i++ {
		fd, err := fs.Open(env, p.filePath(i), vfs.O_CREATE|vfs.O_RDWR)
		if err != nil {
			return err
		}
		for off := uint64(0); off < p.AvgFileSize; off += uint64(len(chunk)) {
			n := uint64(len(chunk))
			if off+n > p.AvgFileSize {
				n = p.AvgFileSize - off
			}
			if _, err := fs.WriteAt(env, fd, chunk[:n], off); err != nil {
				fs.Close(env, fd)
				return err
			}
		}
		if err := fs.Close(env, fd); err != nil {
			return err
		}
	}
	return nil
}

// RunThread executes loops of the personality on one thread; ops counts
// individual file system operations (as filebench reports).
func (p *FilebenchProfile) RunThread(env *sim.Env, fs vfs.FileSystem, tid, loops int) (*Result, error) {
	rng := Rand(int64(tid)*7919 + 17)
	res := &Result{Name: p.Name}
	buf := make([]byte, p.ReadSize)
	wbuf := make([]byte, p.WriteSize)
	start := env.Now()

	readWhole := func(path string) error {
		fd, err := fs.Open(env, path, vfs.O_RDONLY)
		if err != nil {
			return err
		}
		defer fs.Close(env, fd)
		for {
			n, err := fs.Read(env, fd, buf)
			if err != nil {
				return err
			}
			res.Bytes += uint64(n)
			if n < len(buf) {
				return nil
			}
		}
	}

	for l := 0; l < loops; l++ {
		// Reads.
		for r := 0; r < p.ReadsPerLoop; r++ {
			path := p.filePath(rng.Intn(p.Files))
			opStart := env.Now()
			if err := readWhole(path); err != nil {
				return nil, fmt.Errorf("%s read: %w", p.Name, err)
			}
			res.Latency.Record(env.Now() - opStart)
			res.Ops++
		}
		// Writes (appends to random files).
		for w := 0; w < p.WritesPerLoop; w++ {
			path := p.filePath(rng.Intn(p.Files))
			opStart := env.Now()
			fd, err := fs.Open(env, path, vfs.O_WRONLY|vfs.O_APPEND)
			if err != nil {
				return nil, fmt.Errorf("%s append open: %w", p.Name, err)
			}
			if _, err := fs.Write(env, fd, wbuf); err != nil {
				fs.Close(env, fd)
				return nil, fmt.Errorf("%s append: %w", p.Name, err)
			}
			if p.FsyncWrites {
				if err := fs.Fsync(env, fd); err != nil {
					fs.Close(env, fd)
					return nil, fmt.Errorf("%s fsync: %w", p.Name, err)
				}
			}
			if err := fs.Close(env, fd); err != nil {
				return nil, err
			}
			res.Latency.Record(env.Now() - opStart)
			res.Ops++
			res.Bytes += uint64(p.WriteSize)
		}
		// Create + delete churn (per-thread private names to stay
		// POSIX-race-free).
		if p.CreateDelete {
			path := fmt.Sprintf("/%s/dir%d/t%d-l%d", p.Name, tid%20, tid, l)
			opStart := env.Now()
			fd, err := fs.Open(env, path, vfs.O_CREATE|vfs.O_RDWR)
			if err != nil {
				return nil, fmt.Errorf("%s create: %w", p.Name, err)
			}
			if _, err := fs.Write(env, fd, wbuf); err != nil {
				fs.Close(env, fd)
				return nil, err
			}
			if p.FsyncWrites {
				if err := fs.Fsync(env, fd); err != nil {
					fs.Close(env, fd)
					return nil, err
				}
			}
			if err := fs.Close(env, fd); err != nil {
				return nil, err
			}
			if err := fs.Unlink(env, path); err != nil {
				return nil, fmt.Errorf("%s delete: %w", p.Name, err)
			}
			res.Latency.Record(env.Now() - opStart)
			res.Ops += 2
			res.Bytes += uint64(p.WriteSize)
		}
	}
	res.Elapsed = env.Now() - start
	return res, nil
}

// RunFilebench sets up the fileset and runs the personality on the given
// cores.
func RunFilebench(eng *sim.Engine, cores []*sim.Core, fsFor func(int) vfs.FileSystem, p *FilebenchProfile, loops int, horizon time.Duration) (*Result, error) {
	var serr error
	setupDone := false
	eng.Spawn("filebench-setup", cores[0], func(env *sim.Env) {
		defer func() { setupDone = true }()
		fs := fsFor(0)
		if init, ok := fs.(vfs.PerThreadInit); ok {
			if serr = init.InitThread(env); serr != nil {
				return
			}
		}
		serr = p.Setup(env, fs)
	})
	deadline := eng.Now() + time.Hour
	for !setupDone && eng.Now() < deadline {
		eng.Run(eng.Now() + 100*time.Millisecond)
	}
	if serr != nil {
		return nil, fmt.Errorf("filebench %s setup: %w", p.Name, serr)
	}
	if !setupDone {
		return nil, fmt.Errorf("filebench %s setup did not finish", p.Name)
	}
	spec := &ParallelSpec{
		Eng:   eng,
		Cores: cores,
		FSFor: fsFor,
		Body: func(env *sim.Env, fs vfs.FileSystem, tid int) (*Result, error) {
			return p.RunThread(env, fs, tid, loops)
		},
		Horizon: horizon,
	}
	merged, _, err := spec.Run()
	return merged, err
}
