package workload

import (
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/vfs"
)

// BlockIO abstracts the storage-subsystem interfaces (stack models and
// AeoDriver) for the fio-style block workloads.
type BlockIO interface {
	// Init prepares the calling task (queue pair allocation).
	Init(env *sim.Env) error
	// Read reads cnt blocks at lba synchronously.
	Read(env *sim.Env, lba uint64, cnt uint32, buf []byte) error
	// Write writes cnt blocks at lba synchronously.
	Write(env *sim.Env, lba uint64, cnt uint32, buf []byte) error
	// SubmitRead issues an async read and returns a wait closure.
	SubmitRead(env *sim.Env, lba uint64, cnt uint32, buf []byte) (func(env *sim.Env) error, error)
	// SubmitWrite issues an async write and returns a wait closure.
	SubmitWrite(env *sim.Env, lba uint64, cnt uint32, buf []byte) (func(env *sim.Env) error, error)
}

// FioPattern is the access pattern.
type FioPattern int

// Patterns.
const (
	PatternSeq FioPattern = iota
	PatternRand
)

// FioJob is a fio-style block workload bound to one task.
type FioJob struct {
	Name    string
	IO      BlockIO
	Write   bool
	Pattern FioPattern
	// BlockSizeBytes is the I/O size; BlockBytes is the device block
	// size (I/O size must be a multiple).
	BlockSizeBytes int
	BlockBytes     int
	// Span is the LBA range [Start, Start+Span) the job touches.
	Start, Span uint64
	// QD is the queue depth (1 = synchronous).
	QD int
	// Ops caps the number of operations (0 = until Until).
	Ops int
	// Until stops the job at this virtual time (0 = Ops only).
	Until time.Duration
	Seed  int64
}

// Run executes the job on the calling task and returns its result.
func (j *FioJob) Run(env *sim.Env) (*Result, error) {
	if err := j.IO.Init(env); err != nil {
		return nil, err
	}
	if j.BlockBytes == 0 {
		j.BlockBytes = 4096
	}
	if j.BlockSizeBytes == 0 {
		j.BlockSizeBytes = 4096
	}
	cnt := uint32(j.BlockSizeBytes / j.BlockBytes)
	if cnt == 0 {
		cnt = 1
	}
	if j.QD <= 0 {
		j.QD = 1
	}
	rng := Rand(j.Seed ^ 0xf10)
	res := &Result{Name: j.Name}
	buf := make([]byte, j.BlockSizeBytes)

	nextLBA := func(i int) uint64 {
		span := j.Span
		if span < uint64(cnt) {
			span = uint64(cnt)
		}
		if j.Pattern == PatternSeq {
			return j.Start + uint64(i)*uint64(cnt)%(span-uint64(cnt)+1)
		}
		return j.Start + uint64(rng.Int63n(int64(span-uint64(cnt)+1)))
	}

	start := env.Now()
	done := func(i int) bool {
		if j.Ops > 0 && i >= j.Ops {
			return true
		}
		if j.Until > 0 && env.Now() >= j.Until {
			return true
		}
		return j.Ops == 0 && j.Until == 0 && i >= 1000
	}

	if j.QD == 1 {
		for i := 0; !done(i); i++ {
			lba := nextLBA(i)
			opStart := env.Now()
			var err error
			if j.Write {
				err = j.IO.Write(env, lba, cnt, buf)
			} else {
				err = j.IO.Read(env, lba, cnt, buf)
			}
			if err != nil {
				return nil, err
			}
			res.Latency.Record(env.Now() - opStart)
			res.Ops++
			res.Bytes += uint64(j.BlockSizeBytes)
		}
	} else {
		// Pipelined: keep QD requests in flight, waiting oldest-first.
		type inflight struct {
			wait  func(env *sim.Env) error
			start time.Duration
		}
		var q []inflight
		i := 0
		for !done(i) || len(q) > 0 {
			for len(q) < j.QD && !done(i) {
				lba := nextLBA(i)
				i++
				var wait func(env *sim.Env) error
				var err error
				if j.Write {
					wait, err = j.IO.SubmitWrite(env, lba, cnt, buf)
				} else {
					wait, err = j.IO.SubmitRead(env, lba, cnt, buf)
				}
				if err != nil {
					return nil, err
				}
				q = append(q, inflight{wait, env.Now()})
			}
			if len(q) == 0 {
				break
			}
			fl := q[0]
			q = q[1:]
			if err := fl.wait(env); err != nil {
				return nil, err
			}
			res.Latency.Record(env.Now() - fl.start)
			res.Ops++
			res.Bytes += uint64(j.BlockSizeBytes)
		}
	}
	res.Elapsed = env.Now() - start
	return res, nil
}

// FileFioJob is a fio-style workload over a file system: read or write at
// random/sequential offsets in a preallocated file.
type FileFioJob struct {
	Name    string
	FS      vfs.FileSystem
	Path    string
	Write   bool
	Pattern FioPattern
	IOSize  int
	// FileSize is the preallocated file size; offsets stay within it.
	FileSize uint64
	Ops      int
	Until    time.Duration
	Fsync    bool // fsync after every write (Figure 17 workload)
	Seed     int64
}

// Prepare creates and fills the file (cache-warm), returning the fd.
func (j *FileFioJob) Prepare(env *sim.Env) (int, error) {
	if init, ok := j.FS.(vfs.PerThreadInit); ok {
		if err := init.InitThread(env); err != nil {
			return -1, err
		}
	}
	fd, err := j.FS.Open(env, j.Path, vfs.O_CREATE|vfs.O_RDWR)
	if err != nil {
		return -1, err
	}
	// Preallocate with 1MB writes, warming the page cache.
	chunk := make([]byte, 1<<20)
	for off := uint64(0); off < j.FileSize; off += uint64(len(chunk)) {
		n := uint64(len(chunk))
		if off+n > j.FileSize {
			n = j.FileSize - off
		}
		if _, err := j.FS.WriteAt(env, fd, chunk[:n], off); err != nil {
			j.FS.Close(env, fd)
			return -1, err
		}
	}
	return fd, nil
}

// Run executes the prepared job against fd.
func (j *FileFioJob) Run(env *sim.Env, fd int) (*Result, error) {
	if j.IOSize == 0 {
		j.IOSize = 4096
	}
	rng := Rand(j.Seed ^ 0xf11e)
	buf := make([]byte, j.IOSize)
	res := &Result{Name: j.Name}
	span := int64(j.FileSize) - int64(j.IOSize)
	if span < 1 {
		span = 1
	}
	start := env.Now()
	for i := 0; ; i++ {
		if j.Ops > 0 && i >= j.Ops {
			break
		}
		if j.Until > 0 && env.Now() >= j.Until {
			break
		}
		if j.Ops == 0 && j.Until == 0 && i >= 1000 {
			break
		}
		var off uint64
		if j.Pattern == PatternSeq {
			off = uint64(i) * uint64(j.IOSize) % uint64(span)
		} else {
			off = uint64(rng.Int63n(span))
		}
		// Align to the I/O size for fio-like behavior.
		off -= off % uint64(j.IOSize)
		opStart := env.Now()
		var err error
		if j.Write {
			_, err = j.FS.WriteAt(env, fd, buf, off)
			if err == nil && j.Fsync {
				err = j.FS.Fsync(env, fd)
			}
		} else {
			_, err = j.FS.ReadAt(env, fd, buf, off)
		}
		if err != nil {
			return nil, err
		}
		res.Latency.Record(env.Now() - opStart)
		res.Ops++
		res.Bytes += uint64(j.IOSize)
	}
	res.Elapsed = env.Now() - start
	return res, nil
}

// ComputeTask is the swaptions-like compute kernel: it spins through fixed
// quanta of pure CPU work and counts completed iterations.
type ComputeTask struct {
	// Quantum is one iteration's CPU cost (default 100µs, roughly one
	// swaption pricing round).
	Quantum time.Duration
	// Until stops the task.
	Until time.Duration

	// Iterations counts completed quanta.
	Iterations uint64
}

// Run executes the compute kernel on the calling task.
func (c *ComputeTask) Run(env *sim.Env) {
	if c.Quantum <= 0 {
		c.Quantum = 100 * time.Microsecond
	}
	for c.Until == 0 || env.Now() < c.Until {
		env.Exec(c.Quantum)
		c.Iterations++
		if c.Until == 0 && c.Iterations >= 1000 {
			return
		}
	}
}
