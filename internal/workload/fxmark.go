package workload

import (
	"fmt"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/vfs"
)

// FXMark is one FXMARK metadata microbenchmark (§9.4 / Figure 16): a setup
// phase and a per-thread operation repeated for a fixed count. The
// two-letter suffix encodes sharing level: L = private (low), M = shared
// (medium), H = same object (high).
type FXMark struct {
	Name string
	// Setup runs once before threads start (thread 0's context).
	Setup func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error
	// Op is one measured iteration for thread tid.
	Op func(env *sim.Env, fs vfs.FileSystem, tid, i int) error
}

// dirDepth5 builds the five-level directory prefix FXMARK uses.
func dirDepth5(base string) []string {
	paths := []string{}
	p := base
	for i := 0; i < 5; i++ {
		p = fmt.Sprintf("%s/d%d", p, i)
		paths = append(paths, p)
	}
	return paths
}

func mkdirAll(env *sim.Env, fs vfs.FileSystem, paths []string) error {
	for _, p := range paths {
		if err := fs.Mkdir(env, p); err != nil {
			return err
		}
	}
	return nil
}

func leaf5(base string) string { return base + "/d0/d1/d2/d3/d4" }

// openClose opens a path read-only and closes it (MRP* op).
func openClose(env *sim.Env, fs vfs.FileSystem, path string) error {
	fd, err := fs.Open(env, path, vfs.O_RDONLY)
	if err != nil {
		return err
	}
	return fs.Close(env, fd)
}

func createEmpty(env *sim.Env, fs vfs.FileSystem, path string) error {
	fd, err := fs.Open(env, path, vfs.O_CREATE|vfs.O_RDWR)
	if err != nil {
		return err
	}
	return fs.Close(env, fd)
}

// FXMarks returns the benchmark suite keyed by FXMARK name.
func FXMarks() map[string]*FXMark {
	return map[string]*FXMark{
		// ① open a private / random-shared / same file in five-depth
		// directories.
		"MRPL": {
			Name: "MRPL",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				for t := 0; t < threads; t++ {
					base := fmt.Sprintf("/mrpl%d", t)
					if err := fs.Mkdir(env, base); err != nil {
						return err
					}
					if err := mkdirAll(env, fs, dirDepth5(base)); err != nil {
						return err
					}
					if err := createEmpty(env, fs, leaf5(base)+"/f"); err != nil {
						return err
					}
				}
				return nil
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				return openClose(env, fs, fmt.Sprintf("/mrpl%d", tid)+"/d0/d1/d2/d3/d4/f")
			},
		},
		"MRPM": {
			Name: "MRPM",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				if err := fs.Mkdir(env, "/mrpm"); err != nil {
					return err
				}
				if err := mkdirAll(env, fs, dirDepth5("/mrpm")); err != nil {
					return err
				}
				for f := 0; f < 64; f++ {
					if err := createEmpty(env, fs, fmt.Sprintf("%s/f%d", leaf5("/mrpm"), f)); err != nil {
						return err
					}
				}
				return nil
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				f := (tid*31 + i*17) % 64
				return openClose(env, fs, fmt.Sprintf("%s/f%d", leaf5("/mrpm"), f))
			},
		},
		"MRPH": {
			Name: "MRPH",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				if err := fs.Mkdir(env, "/mrph"); err != nil {
					return err
				}
				if err := mkdirAll(env, fs, dirDepth5("/mrph")); err != nil {
					return err
				}
				return createEmpty(env, fs, leaf5("/mrph")+"/f")
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				return openClose(env, fs, leaf5("/mrph")+"/f")
			},
		},
		// ② unlink an empty file in a private / shared directory.
		"MWUL": {
			Name: "MWUL",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				for t := 0; t < threads; t++ {
					dir := fmt.Sprintf("/mwul%d", t)
					if err := fs.Mkdir(env, dir); err != nil {
						return err
					}
					for i := 0; i < ops; i++ {
						if err := createEmpty(env, fs, fmt.Sprintf("%s/f%d", dir, i)); err != nil {
							return err
						}
					}
				}
				return nil
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				return fs.Unlink(env, fmt.Sprintf("/mwul%d/f%d", tid, i))
			},
		},
		"MWUM": {
			Name: "MWUM",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				if err := fs.Mkdir(env, "/mwum"); err != nil {
					return err
				}
				for t := 0; t < threads; t++ {
					for i := 0; i < ops; i++ {
						if err := createEmpty(env, fs, fmt.Sprintf("/mwum/t%d-f%d", t, i)); err != nil {
							return err
						}
					}
				}
				return nil
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				return fs.Unlink(env, fmt.Sprintf("/mwum/t%d-f%d", tid, i))
			},
		},
		// ③ create an empty file in a private / shared directory.
		"MWCL": {
			Name: "MWCL",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				for t := 0; t < threads; t++ {
					if err := fs.Mkdir(env, fmt.Sprintf("/mwcl%d", t)); err != nil {
						return err
					}
				}
				return nil
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				return createEmpty(env, fs, fmt.Sprintf("/mwcl%d/f%d", tid, i))
			},
		},
		"MWCM": {
			Name: "MWCM",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				return fs.Mkdir(env, "/mwcm")
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				return createEmpty(env, fs, fmt.Sprintf("/mwcm/t%d-f%d", tid, i))
			},
		},
		// ④ rename a file within a private directory / into a shared one.
		"MWRL": {
			Name: "MWRL",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				for t := 0; t < threads; t++ {
					dir := fmt.Sprintf("/mwrl%d", t)
					if err := fs.Mkdir(env, dir); err != nil {
						return err
					}
					if err := createEmpty(env, fs, dir+"/f-0"); err != nil {
						return err
					}
				}
				return nil
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				dir := fmt.Sprintf("/mwrl%d", tid)
				return fs.Rename(env, fmt.Sprintf("%s/f-%d", dir, i), fmt.Sprintf("%s/f-%d", dir, i+1))
			},
		},
		"MWRM": {
			Name: "MWRM",
			Setup: func(env *sim.Env, fs vfs.FileSystem, threads, ops int) error {
				if err := fs.Mkdir(env, "/mwrm"); err != nil {
					return err
				}
				for t := 0; t < threads; t++ {
					dir := fmt.Sprintf("/mwrm-src%d", t)
					if err := fs.Mkdir(env, dir); err != nil {
						return err
					}
					for i := 0; i < ops; i++ {
						if err := createEmpty(env, fs, fmt.Sprintf("%s/f%d", dir, i)); err != nil {
							return err
						}
					}
				}
				return nil
			},
			Op: func(env *sim.Env, fs vfs.FileSystem, tid, i int) error {
				return fs.Rename(env,
					fmt.Sprintf("/mwrm-src%d/f%d", tid, i),
					fmt.Sprintf("/mwrm/t%d-f%d", tid, i))
			},
		},
	}
}

// FXMarkOrder is the presentation order of Figure 16.
var FXMarkOrder = []string{"MRPL", "MRPM", "MRPH", "MWUL", "MWUM", "MWCL", "MWCM", "MWRL", "MWRM"}

// RunFXMark executes mark with the given thread count; each thread performs
// ops iterations.
func RunFXMark(eng *sim.Engine, cores []*sim.Core, fsFor func(int) vfs.FileSystem, mark *FXMark, ops int, horizon time.Duration) (*Result, error) {
	// Setup on a fresh task; drive the engine in slices so spinning
	// server threads (uFS workers) don't keep it running forever.
	var serr error
	setupDone := false
	eng.Spawn("fxmark-setup", cores[0], func(env *sim.Env) {
		defer func() { setupDone = true }()
		fs := fsFor(0)
		if init, ok := fs.(vfs.PerThreadInit); ok {
			if serr = init.InitThread(env); serr != nil {
				return
			}
		}
		serr = mark.Setup(env, fs, len(cores), ops)
	})
	deadline := eng.Now() + time.Hour
	for !setupDone && eng.Now() < deadline {
		eng.Run(eng.Now() + 50*time.Millisecond)
	}
	if serr != nil {
		return nil, fmt.Errorf("fxmark %s setup: %w", mark.Name, serr)
	}
	if !setupDone {
		return nil, fmt.Errorf("fxmark %s setup did not finish", mark.Name)
	}
	spec := &ParallelSpec{
		Eng:   eng,
		Cores: cores,
		FSFor: fsFor,
		Body: func(env *sim.Env, fs vfs.FileSystem, tid int) (*Result, error) {
			res := &Result{Name: mark.Name}
			start := env.Now()
			for i := 0; i < ops; i++ {
				opStart := env.Now()
				if err := mark.Op(env, fs, tid, i); err != nil {
					return nil, fmt.Errorf("%s thread %d op %d: %w", mark.Name, tid, i, err)
				}
				res.Latency.Record(env.Now() - opStart)
				res.Ops++
			}
			res.Elapsed = env.Now() - start
			return res, nil
		},
		Horizon: horizon,
	}
	merged, _, err := spec.Run()
	return merged, err
}
