package workload

import (
	"fmt"
	"math/rand"
)

// MetaOpKind enumerates the namespace operations of a metadata-heavy
// profile. The stream is stack-agnostic: drivers map each op onto whatever
// namespace API they measure (the aeomds client, a local FS, ...).
type MetaOpKind uint8

const (
	// MetaCreate creates Path (open with create, small write, close).
	MetaCreate MetaOpKind = iota
	// MetaOpenRead opens Path, reads its first bytes, closes — the
	// open-to-first-byte op.
	MetaOpenRead
	// MetaStat looks Path up without opening.
	MetaStat
	// MetaUnlink removes Path.
	MetaUnlink
	// MetaReaddir lists Dir.
	MetaReaddir
	// MetaRename moves Path to Dst.
	MetaRename
)

var metaOpNames = map[MetaOpKind]string{
	MetaCreate: "create", MetaOpenRead: "openread", MetaStat: "stat",
	MetaUnlink: "unlink", MetaReaddir: "readdir", MetaRename: "rename",
}

func (k MetaOpKind) String() string {
	if s, ok := metaOpNames[k]; ok {
		return s
	}
	return fmt.Sprintf("MetaOpKind(%d)", uint8(k))
}

// MetaOp is one operation of the stream, with paths fully resolved.
type MetaOp struct {
	Kind  MetaOpKind
	Path  string // create/openread/stat/unlink/rename source
	Dst   string // rename destination
	Dir   string // readdir target
	Bytes int    // payload bytes for create/openread data touches
}

// MetaProfile is one FXMARK-style metadata-heavy workload: a sharing level
// (private per-client directories vs one shared directory), a pre-created
// population, and an operation mix. Streams are generated deterministically
// from (profile, client, seed) — byte-identical across runs and across
// backend shard counts.
type MetaProfile struct {
	Name string
	// Shared: all clients work in one directory ("/shared"), and the mix
	// must be read-only so any interleaving stays valid. Private: client i
	// works under "/p<i>" and owns every name in it.
	Shared bool
	// SetupFiles is the pre-created population per directory.
	SetupFiles int
	// Bytes is the data touched per create/openread (first-byte reads).
	Bytes int
	// Mix maps op kind → weight.
	Mix map[MetaOpKind]int
}

// MetaProfiles returns the profile suite, keyed by name:
//
//   - mdstat: shared-directory, read-only — stat-dominated with open-read
//     and readdir; the MRP*-style contention case, safe under any
//     interleaving;
//   - mdcreate: private-directory create/unlink churn — the MWC*-style
//     allocation case;
//   - mdmix: private-directory mixed create/stat/rename/unlink/readdir —
//     the general namespace workload driving every MDS code path.
func MetaProfiles() map[string]*MetaProfile {
	return map[string]*MetaProfile{
		"mdstat": {
			Name: "mdstat", Shared: true, SetupFiles: 64, Bytes: 4096,
			Mix: map[MetaOpKind]int{MetaStat: 70, MetaOpenRead: 20, MetaReaddir: 10},
		},
		"mdcreate": {
			Name: "mdcreate", Shared: false, SetupFiles: 0, Bytes: 4096,
			Mix: map[MetaOpKind]int{MetaCreate: 60, MetaUnlink: 25, MetaStat: 10, MetaReaddir: 5},
		},
		"mdmix": {
			Name: "mdmix", Shared: false, SetupFiles: 8, Bytes: 4096,
			Mix: map[MetaOpKind]int{
				MetaCreate: 30, MetaStat: 25, MetaRename: 15,
				MetaUnlink: 15, MetaOpenRead: 10, MetaReaddir: 5,
			},
		},
	}
}

// ClientDir returns the directory client id works in.
func (p *MetaProfile) ClientDir(id int) string {
	if p.Shared {
		return "/shared"
	}
	return fmt.Sprintf("/p%d", id)
}

// SetupDirs returns the directories to create before the run.
func (p *MetaProfile) SetupDirs(clients int) []string {
	if p.Shared {
		return []string{"/shared"}
	}
	dirs := make([]string, clients)
	for i := range dirs {
		dirs[i] = p.ClientDir(i)
	}
	return dirs
}

// SetupFilePaths returns the files to pre-create before the run.
func (p *MetaProfile) SetupFilePaths(clients int) []string {
	var out []string
	for _, d := range p.SetupDirs(clients) {
		for i := 0; i < p.SetupFiles; i++ {
			out = append(out, fmt.Sprintf("%s/s%d", d, i))
		}
	}
	return out
}

// kinds returns the mix expanded into a deterministic weighted list,
// ordered by kind value so map iteration order cannot leak in.
func (p *MetaProfile) kinds() []MetaOpKind {
	var out []MetaOpKind
	for k := MetaCreate; k <= MetaRename; k++ {
		for i := 0; i < p.Mix[k]; i++ {
			out = append(out, k)
		}
	}
	return out
}

// Ops generates client id's operation stream: n ops drawn from the mix
// with a per-(seed, client) generator. The generator tracks the names it
// has created so mutating ops always target live files (private profiles
// own their directory, so the stream stays valid under any cross-client
// interleaving). Read-only ops in shared profiles draw from the
// pre-created population.
func (p *MetaProfile) Ops(id, n int, seed int64) []MetaOp {
	rng := rand.New(rand.NewSource(seed*1315423911 + int64(id)*2654435761 + 12345))
	dir := p.ClientDir(id)
	kinds := p.kinds()

	// live is the client-owned name set; setup files seed it for private
	// profiles so stats and renames have targets immediately.
	var live []string
	if !p.Shared {
		for i := 0; i < p.SetupFiles; i++ {
			live = append(live, fmt.Sprintf("%s/s%d", dir, i))
		}
	}
	shared := make([]string, p.SetupFiles)
	for i := range shared {
		shared[i] = fmt.Sprintf("%s/s%d", dir, i)
	}
	fresh := 0
	nextName := func() string {
		fresh++
		return fmt.Sprintf("%s/c%d_%d", dir, id, fresh)
	}
	pickLive := func() (string, int) {
		if len(live) == 0 {
			return "", -1
		}
		i := rng.Intn(len(live))
		return live[i], i
	}

	out := make([]MetaOp, 0, n)
	for len(out) < n {
		k := kinds[rng.Intn(len(kinds))]
		switch k {
		case MetaCreate:
			name := nextName()
			live = append(live, name)
			out = append(out, MetaOp{Kind: MetaCreate, Path: name, Bytes: p.Bytes})
		case MetaOpenRead, MetaStat:
			var path string
			if p.Shared {
				path = shared[rng.Intn(len(shared))]
			} else {
				var i int
				path, i = pickLive()
				if i < 0 {
					continue // nothing to read yet; redraw
				}
			}
			out = append(out, MetaOp{Kind: k, Path: path, Bytes: p.Bytes})
		case MetaUnlink:
			path, i := pickLive()
			if i < 0 {
				continue
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			out = append(out, MetaOp{Kind: MetaUnlink, Path: path})
		case MetaReaddir:
			out = append(out, MetaOp{Kind: MetaReaddir, Dir: dir})
		case MetaRename:
			path, i := pickLive()
			if i < 0 {
				continue
			}
			dst := nextName()
			live[i] = dst
			out = append(out, MetaOp{Kind: MetaRename, Path: path, Dst: dst})
		}
	}
	return out
}
