package workload

import (
	"reflect"
	"testing"
)

// Same (profile, client, seed) → byte-identical stream; different clients
// and seeds → different streams.
func TestMetaProfileDeterminism(t *testing.T) {
	for name, p := range MetaProfiles() {
		a := p.Ops(3, 500, 42)
		b := p.Ops(3, 500, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different streams", name)
		}
		if len(a) != 500 {
			t.Fatalf("%s: %d ops, want 500", name, len(a))
		}
		c := p.Ops(4, 500, 42)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: distinct clients share a stream", name)
		}
		d := p.Ops(3, 500, 43)
		if reflect.DeepEqual(a, d) {
			t.Fatalf("%s: distinct seeds share a stream", name)
		}
	}
}

// Streams must be self-consistent: an op only ever targets a name that is
// live at that point (created earlier, or pre-created by setup), so a
// driver can replay them verbatim against any backend.
func TestMetaProfileStreamValidity(t *testing.T) {
	for name, p := range MetaProfiles() {
		live := map[string]bool{}
		for _, f := range p.SetupFilePaths(8) {
			live[f] = true
		}
		ops := p.Ops(2, 2000, 7)
		for i, op := range ops {
			switch op.Kind {
			case MetaCreate:
				if live[op.Path] {
					t.Fatalf("%s op %d: create over live %s", name, i, op.Path)
				}
				live[op.Path] = true
			case MetaOpenRead, MetaStat:
				if !live[op.Path] {
					t.Fatalf("%s op %d: %v of dead %s", name, i, op.Kind, op.Path)
				}
			case MetaUnlink:
				if !live[op.Path] {
					t.Fatalf("%s op %d: unlink of dead %s", name, i, op.Path)
				}
				delete(live, op.Path)
			case MetaRename:
				if !live[op.Path] || live[op.Dst] {
					t.Fatalf("%s op %d: rename %s -> %s invalid", name, i, op.Path, op.Dst)
				}
				delete(live, op.Path)
				live[op.Dst] = true
			case MetaReaddir:
				if op.Dir == "" {
					t.Fatalf("%s op %d: readdir without dir", name, i)
				}
			}
		}
	}
}

// The generated mix tracks the requested weights (loosely — redraws on an
// empty live set skew mutators early).
func TestMetaProfileMix(t *testing.T) {
	p := MetaProfiles()["mdmix"]
	ops := p.Ops(0, 5000, 99)
	counts := map[MetaOpKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
	}
	total := 0
	for _, w := range p.Mix {
		total += w
	}
	for k, w := range p.Mix {
		want := float64(w) / float64(total)
		got := float64(counts[k]) / float64(len(ops))
		if got < want*0.5 || got > want*1.8 {
			t.Fatalf("mix drift for %v: got %.3f want ~%.3f", k, got, want)
		}
	}
	if counts[MetaRename] == 0 || counts[MetaUnlink] == 0 {
		t.Fatal("mutating ops absent from mdmix")
	}
}
