package workload

import (
	"fmt"
	"time"

	"aeolia/internal/sim"
	"aeolia/internal/vfs"
)

// ParallelSpec runs one benchmark body per core, each on its own task, and
// gathers per-thread results.
type ParallelSpec struct {
	Eng   *sim.Engine
	Cores []*sim.Core
	// FSFor returns thread tid's file-system handle (uFS clients are
	// per-thread).
	FSFor func(tid int) vfs.FileSystem
	// Body is the measured per-thread work.
	Body func(env *sim.Env, fs vfs.FileSystem, tid int) (*Result, error)
	// Horizon bounds the run in virtual time (required when spinning
	// server threads keep the event queue alive).
	Horizon time.Duration
}

// Run spawns the threads, drives the engine until they all finish (or the
// horizon expires), and returns the merged result plus per-thread results.
func (p *ParallelSpec) Run() (*Result, []*Result, error) {
	n := len(p.Cores)
	results := make([]*Result, n)
	errs := make([]error, n)
	remaining := n
	for i, c := range p.Cores {
		i := i
		fs := p.FSFor(i)
		p.Eng.Spawn(fmt.Sprintf("bench-%d", i), c, func(env *sim.Env) {
			if init, ok := fs.(vfs.PerThreadInit); ok {
				if err := init.InitThread(env); err != nil {
					errs[i] = err
					remaining--
					return
				}
			}
			res, err := p.Body(env, fs, i)
			results[i], errs[i] = res, err
			remaining--
		})
	}
	// Drive until all bench tasks finish; cap by the horizon.
	horizon := p.Horizon
	if horizon == 0 {
		horizon = time.Hour
	}
	deadline := p.Eng.Now() + horizon
	for remaining > 0 && p.Eng.Now() < deadline {
		p.Eng.Run(min64(p.Eng.Now()+50*time.Millisecond, deadline))
	}
	if remaining > 0 {
		return nil, nil, fmt.Errorf("workload: %d thread(s) did not finish before the horizon", remaining)
	}
	merged := &Result{}
	var span time.Duration
	for i, r := range results {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		if r == nil {
			continue
		}
		merged.Ops += r.Ops
		merged.Bytes += r.Bytes
		merged.Latency.Merge(&r.Latency)
		if r.Elapsed > span {
			span = r.Elapsed
		}
		if merged.Name == "" {
			merged.Name = r.Name
		}
	}
	merged.Elapsed = span
	return merged, results, nil
}

func min64(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
