// Package workload implements the paper's benchmark drivers: a fio-style
// I/O generator (block-level and file-level), the FXMARK metadata
// microbenchmarks, the four Filebench personalities of Table 7, and a
// swaptions-like compute kernel — all over virtual time.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// LatencyRecorder collects per-operation latencies.
type LatencyRecorder struct {
	samples []time.Duration
	sorted  bool
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Merge folds another recorder's samples in.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	r.samples = append(r.samples, o.samples...)
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

func (r *LatencyRecorder) sort() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	idx := int(p / 100 * float64(len(r.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.samples) {
		idx = len(r.samples) - 1
	}
	return r.samples[idx]
}

// Median returns the 50th percentile.
func (r *LatencyRecorder) Median() time.Duration { return r.Percentile(50) }

// P99 returns the 99th percentile.
func (r *LatencyRecorder) P99() time.Duration { return r.Percentile(99) }

// Max returns the maximum sample.
func (r *LatencyRecorder) Max() time.Duration { return r.Percentile(100) }

// Mean returns the average sample.
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Result summarizes one benchmark run.
type Result struct {
	Name     string
	Ops      uint64
	Bytes    uint64
	Elapsed  time.Duration
	Latency  LatencyRecorder
	ExtraOps map[string]float64 // auxiliary series (e.g. compute iterations)
}

// OpsPerSec returns throughput in operations/second of virtual time.
func (r *Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MBps returns throughput in MB/s (1e6 bytes).
func (r *Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// GiBps returns throughput in GiB/s.
func (r *Result) GiBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 30) / r.Elapsed.Seconds()
}

// KOpsPerSec returns throughput in kilo-operations/second.
func (r *Result) KOpsPerSec() float64 { return r.OpsPerSec() / 1e3 }

func (r *Result) String() string {
	return fmt.Sprintf("%s: %d ops in %v (%.0f ops/s, %.1f MB/s, p50=%v p99=%v)",
		r.Name, r.Ops, r.Elapsed, r.OpsPerSec(), r.MBps(), r.Latency.Median(), r.Latency.P99())
}

// Rand returns a seeded deterministic RNG for workloads.
func Rand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
