package workload_test

import (
	"testing"
	"time"

	"aeolia/internal/aeofs"
	"aeolia/internal/machine"
	"aeolia/internal/nvme"
	"aeolia/internal/sim"
	"aeolia/internal/stackmodel"
	"aeolia/internal/vfs"
	"aeolia/internal/workload"
)

func TestLatencyRecorderPercentiles(t *testing.T) {
	var r workload.LatencyRecorder
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	if m := r.Median(); m < 49*time.Microsecond || m > 51*time.Microsecond {
		t.Fatalf("Median = %v", m)
	}
	if p := r.P99(); p < 98*time.Microsecond || p > 100*time.Microsecond {
		t.Fatalf("P99 = %v", p)
	}
	if r.Max() != 100*time.Microsecond {
		t.Fatalf("Max = %v", r.Max())
	}
	if r.Mean() != 50500*time.Nanosecond {
		t.Fatalf("Mean = %v", r.Mean())
	}
	var other workload.LatencyRecorder
	other.Record(time.Millisecond)
	r.Merge(&other)
	if r.Max() != time.Millisecond {
		t.Fatalf("Max after merge = %v", r.Max())
	}
}

func TestResultRates(t *testing.T) {
	r := &workload.Result{Ops: 1000, Bytes: 4096 * 1000, Elapsed: time.Second}
	if r.OpsPerSec() != 1000 {
		t.Fatalf("OpsPerSec = %v", r.OpsPerSec())
	}
	if r.MBps() < 4.0 || r.MBps() > 4.2 {
		t.Fatalf("MBps = %v", r.MBps())
	}
	empty := &workload.Result{}
	if empty.OpsPerSec() != 0 || empty.MBps() != 0 {
		t.Fatal("zero-elapsed rates must be 0")
	}
}

func TestFioJobSequentialAndRandom(t *testing.T) {
	for _, pattern := range []workload.FioPattern{workload.PatternSeq, workload.PatternRand} {
		m := machine.New(1, nvme.Config{BlockSize: 4096, NumBlocks: 1 << 14})
		st := stackmodel.New(m.Kern, stackmodel.SPDK)
		var res *workload.Result
		var rerr error
		m.Eng.Spawn("fio", m.Eng.Core(0), func(env *sim.Env) {
			job := &workload.FioJob{
				Name: "t", IO: &workload.StackIO{Stack: st}, Pattern: pattern,
				BlockSizeBytes: 4096, BlockBytes: 4096, Span: 1 << 13, Ops: 50,
			}
			res, rerr = job.Run(env)
		})
		m.Eng.Run(0)
		m.Eng.Shutdown()
		if rerr != nil {
			t.Fatal(rerr)
		}
		if res.Ops != 50 || res.Bytes != 50*4096 {
			t.Fatalf("pattern %v: ops=%d bytes=%d", pattern, res.Ops, res.Bytes)
		}
		if res.Latency.Count() != 50 {
			t.Fatalf("latency samples = %d", res.Latency.Count())
		}
	}
}

func TestFioJobQueueDepthFasterThanSync(t *testing.T) {
	run := func(qd int) time.Duration {
		m := machine.New(1, nvme.Config{BlockSize: 4096, NumBlocks: 1 << 14})
		defer m.Eng.Shutdown()
		st := stackmodel.New(m.Kern, stackmodel.SPDK)
		var elapsed time.Duration
		m.Eng.Spawn("fio", m.Eng.Core(0), func(env *sim.Env) {
			job := &workload.FioJob{
				Name: "t", IO: &workload.StackIO{Stack: st}, Pattern: workload.PatternRand,
				BlockSizeBytes: 4096, BlockBytes: 4096, Span: 1 << 13, Ops: 120, QD: qd,
			}
			res, err := job.Run(env)
			if err != nil {
				t.Error(err)
				return
			}
			elapsed = res.Elapsed
		})
		m.Eng.Run(0)
		return elapsed
	}
	sync := run(1)
	deep := run(8)
	if deep >= sync {
		t.Fatalf("qd=8 (%v) should beat qd=1 (%v)", deep, sync)
	}
	if float64(sync)/float64(deep) < 2 {
		t.Fatalf("qd=8 speedup only %.2fx", float64(sync)/float64(deep))
	}
}

func TestComputeTaskCountsIterations(t *testing.T) {
	m := machine.New(1, nvme.Config{BlockSize: 4096, NumBlocks: 1 << 12})
	defer m.Eng.Shutdown()
	c := &workload.ComputeTask{Quantum: time.Millisecond, Until: 50 * time.Millisecond}
	m.Eng.Spawn("comp", m.Eng.Core(0), func(env *sim.Env) { c.Run(env) })
	m.Eng.Run(time.Second)
	if c.Iterations < 45 || c.Iterations > 51 {
		t.Fatalf("Iterations = %d, want ~50", c.Iterations)
	}
}

func buildAeoFS(t *testing.T, cores int) (*machine.Machine, *machine.FSInstance, []*sim.Core) {
	t.Helper()
	m := machine.New(cores, nvme.Config{BlockSize: aeofs.BlockSize, NumBlocks: 1 << 17})
	t.Cleanup(m.Eng.Shutdown)
	fi, err := m.BuildFS(machine.KindAeoFS, machine.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]*sim.Core, cores)
	for i := range cs {
		cs[i] = m.Eng.Core(i)
	}
	return m, fi, cs
}

func TestFXMarkSuiteRuns(t *testing.T) {
	marks := workload.FXMarks()
	if len(marks) != len(workload.FXMarkOrder) {
		t.Fatalf("suite has %d marks, order lists %d", len(marks), len(workload.FXMarkOrder))
	}
	for _, name := range workload.FXMarkOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			m, fi, cores := buildAeoFS(t, 2)
			res, err := workload.RunFXMark(m.Eng, cores,
				func(int) vfs.FileSystem { return fi.FS }, marks[name], 20, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 40 { // 2 threads x 20 ops
				t.Fatalf("ops = %d, want 40", res.Ops)
			}
		})
	}
}

func TestFilebenchProfilesRun(t *testing.T) {
	profiles := workload.FilebenchProfiles(0.001)
	for _, name := range workload.FilebenchOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			m, fi, cores := buildAeoFS(t, 2)
			res, err := workload.RunFilebench(m.Eng, cores,
				func(int) vfs.FileSystem { return fi.FS }, profiles[name], 3, 5*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 || res.Elapsed <= 0 {
				t.Fatalf("empty result: %+v", res)
			}
		})
	}
}

func TestParallelSpecMergesResults(t *testing.T) {
	m, fi, cores := buildAeoFS(t, 4)
	spec := &workload.ParallelSpec{
		Eng: m.Eng, Cores: cores,
		FSFor: func(int) vfs.FileSystem { return fi.FS },
		Body: func(env *sim.Env, fs vfs.FileSystem, tid int) (*workload.Result, error) {
			res := &workload.Result{Name: "x"}
			start := env.Now()
			env.Exec(time.Duration(tid+1) * time.Millisecond)
			res.Ops = uint64(tid + 1)
			res.Elapsed = env.Now() - start
			return res, nil
		},
		Horizon: time.Minute,
	}
	merged, per, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Ops != 1+2+3+4 {
		t.Fatalf("merged ops = %d, want 10", merged.Ops)
	}
	if len(per) != 4 {
		t.Fatalf("per-thread results = %d", len(per))
	}
	if merged.Elapsed < 4*time.Millisecond {
		t.Fatalf("merged elapsed = %v, want slowest thread's span", merged.Elapsed)
	}
}
